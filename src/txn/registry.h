// Distributed-transaction registry.
//
// In CARAT each coordinator TM knows where its transaction is currently
// operating (there is at most one active request per transaction), and the
// probe algorithm routes messages through the TMs using that knowledge. The
// registry centralizes this bookkeeping for the simulated testbed; probe
// *messages* still pay per-hop network delay (see probes.h).

#ifndef CARAT_TXN_REGISTRY_H_
#define CARAT_TXN_REGISTRY_H_

#include <unordered_map>
#include <vector>

#include "txn/ids.h"

namespace carat::txn {

class TxnRegistry {
 public:
  /// Allocates a fresh global transaction id.
  GlobalTxnId NewTxn(model::TxnType user_type, int home_node) {
    const GlobalTxnId gid = next_gid_++;
    descriptors_.emplace(gid, TxnDescriptor{gid, user_type, home_node});
    return gid;
  }

  void EndTxn(GlobalTxnId gid) {
    descriptors_.erase(gid);
    waiting_node_.erase(gid);
  }

  const TxnDescriptor* Find(GlobalTxnId gid) const {
    const auto it = descriptors_.find(gid);
    return it == descriptors_.end() ? nullptr : &it->second;
  }

  /// Marks `gid` as blocked on a lock at `node` (the coordinator TM's view).
  void SetWaitingAt(GlobalTxnId gid, int node) { waiting_node_[gid] = node; }
  void ClearWaiting(GlobalTxnId gid) { waiting_node_.erase(gid); }

  /// Node where `gid` is currently lock-blocked, or -1.
  int WaitingNode(GlobalTxnId gid) const {
    const auto it = waiting_node_.find(gid);
    return it == waiting_node_.end() ? -1 : it->second;
  }

  /// All transactions currently recorded as lock-blocked at `node`.
  std::vector<GlobalTxnId> WaitersAt(int node) const {
    std::vector<GlobalTxnId> out;
    for (const auto& [gid, n] : waiting_node_) {
      if (n == node) out.push_back(gid);
    }
    return out;
  }

  std::size_t active_transactions() const { return descriptors_.size(); }

 private:
  GlobalTxnId next_gid_ = 1;
  std::unordered_map<GlobalTxnId, TxnDescriptor> descriptors_;
  std::unordered_map<GlobalTxnId, int> waiting_node_;
};

}  // namespace carat::txn

#endif  // CARAT_TXN_REGISTRY_H_
