// Distributed-transaction registry, one instance per site.
//
// In CARAT each coordinator TM knows where its transaction is currently
// operating (there is at most one active request per transaction), and the
// probe algorithm routes messages through the TMs using that knowledge. The
// registry keeps that bookkeeping *per home site*: a transaction's descriptor
// lives only at its home, ids encode the home (gid % num_sites), and anyone
// else must route a message to the home TM to learn the current node --
// which is exactly what the probe protocol does (see probes.h). This keeps
// every registry access site-local under the sharded kernel.

#ifndef CARAT_TXN_REGISTRY_H_
#define CARAT_TXN_REGISTRY_H_

#include <cassert>
#include <memory>
#include <unordered_map>
#include <vector>

#include "txn/ids.h"

namespace carat::txn {

/// Home-site slice of the transaction registry. Only events executing on
/// this site may touch it.
class SiteRegistry {
 public:
  SiteRegistry(int site, int num_sites) : site_(site), num_sites_(num_sites) {}
  SiteRegistry(const SiteRegistry&) = delete;
  SiteRegistry& operator=(const SiteRegistry&) = delete;

  /// Allocates a fresh global transaction id homed at this site:
  /// gid = seq * num_sites + site, so HomeOf(gid) == gid % num_sites.
  GlobalTxnId NewTxn(model::TxnType user_type) {
    const GlobalTxnId gid =
        next_seq_++ * static_cast<GlobalTxnId>(num_sites_) +
        static_cast<GlobalTxnId>(site_);
    descriptors_.emplace(gid, TxnDescriptor{gid, user_type, site_, site_});
    return gid;
  }

  void EndTxn(GlobalTxnId gid) { descriptors_.erase(gid); }

  const TxnDescriptor* Find(GlobalTxnId gid) const {
    const auto it = descriptors_.find(gid);
    return it == descriptors_.end() ? nullptr : &it->second;
  }

  /// Coordinator bookkeeping: `gid` now operates at `node` (set before the
  /// REMDO hop, reset when the reply returns home).
  void SetCurrentNode(GlobalTxnId gid, int node) {
    const auto it = descriptors_.find(gid);
    if (it != descriptors_.end()) it->second.current_node = node;
  }

  /// Node where `gid` currently operates, or -1 if it finished.
  int CurrentNode(GlobalTxnId gid) const {
    const auto it = descriptors_.find(gid);
    return it == descriptors_.end() ? -1 : it->second.current_node;
  }

  int site() const { return site_; }
  std::size_t active_transactions() const { return descriptors_.size(); }

 private:
  int site_;
  int num_sites_;
  GlobalTxnId next_seq_ = 1;
  std::unordered_map<GlobalTxnId, TxnDescriptor> descriptors_;
};

/// The per-site registries plus the id -> home mapping.
class TxnRegistrySet {
 public:
  explicit TxnRegistrySet(int num_sites) : num_sites_(num_sites) {
    sites_.reserve(static_cast<std::size_t>(num_sites));
    for (int s = 0; s < num_sites; ++s) {
      sites_.push_back(std::make_unique<SiteRegistry>(s, num_sites));
    }
  }

  int num_sites() const { return num_sites_; }
  int HomeOf(GlobalTxnId gid) const {
    return static_cast<int>(gid % static_cast<GlobalTxnId>(num_sites_));
  }
  SiteRegistry& at(int site) { return *sites_[static_cast<std::size_t>(site)]; }
  const SiteRegistry& at(int site) const {
    return *sites_[static_cast<std::size_t>(site)];
  }

  /// Sum over sites; not safe during RunUntil.
  std::size_t active_transactions() const {
    std::size_t total = 0;
    for (const auto& reg : sites_) total += reg->active_transactions();
    return total;
  }

 private:
  int num_sites_;
  std::vector<std::unique_ptr<SiteRegistry>> sites_;
};

}  // namespace carat::txn

#endif  // CARAT_TXN_REGISTRY_H_
