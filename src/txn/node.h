// Per-node runtime of the CARAT testbed: physical resources (CPU, disks),
// the database partition, the before-image journal, the lock manager, the
// serialized TM server, and the DM-server execution logic.

#ifndef CARAT_TXN_NODE_H_
#define CARAT_TXN_NODE_H_

#include <memory>
#include <vector>

#include "db/buffer_pool.h"
#include "db/database.h"
#include "lock/lock_manager.h"
#include "model/params.h"
#include "sim/resource.h"
#include "sim/sync.h"  // FifoMutex (TM server), CountingSemaphore (DM pool)
#include "sim/task.h"
#include "txn/ids.h"
#include "util/random.h"
#include "wal/log.h"

namespace carat::txn {

/// One database request: a set of records to read (or read-modify-write) at
/// one node. Updates increment each accessed record by one, which lets the
/// harness verify atomicity and write serialization at the end of a run.
struct RequestSpec {
  int node = 0;
  bool update = false;
  std::vector<db::RecordId> records;
};

/// A node of the testbed.
class Node {
 public:
  /// `locks` may point at an externally owned lock manager (the testbed's
  /// per-site LockManagerSet); when null the node owns its own instance
  /// (standalone/unit-test use). Either way the manager must live on the
  /// same site timeline as `sim`.
  Node(sim::SitePort sim, int index, const model::SiteParams& params,
       lock::LockManager* locks = nullptr);

  int index() const { return index_; }
  const model::SiteParams& params() const { return params_; }

  // --- basic service wrappers ----------------------------------------------

  /// TM server handling of one message: waits for the (single) TM server,
  /// then consumes `cpu_ms` on this node's CPU. This is the serialization
  /// the model deliberately ignores (Section 5.5).
  sim::Task<void> TmHandle(double cpu_ms);

  /// Plain CPU burst.
  sim::Task<void> UseCpu(double cpu_ms);

  /// `blocks` database-disk block transfers.
  sim::Task<void> DbIo(int blocks);

  /// `blocks` journal block transfers (database disk unless the node is
  /// configured with a separate log disk).
  sim::Task<void> LogIo(int blocks);

  // --- DM server logic ------------------------------------------------------

  /// Per-transaction synchronization-time accounting, mirroring the model's
  /// delay centers: time blocked on locks (LW) is measured here; the driver
  /// adds remote-wait and commit-wait spans.
  struct PhaseAccounting {
    double lock_wait_ms = 0.0;    ///< LW: blocked on lock requests
    double remote_wait_ms = 0.0;  ///< RW: waiting for remote requests
    double commit_wait_ms = 0.0;  ///< CW: two-phase-commit synchronization
  };

  /// Executes one request on behalf of `gid` using cost parameters `costs`
  /// (the requester's class at this node). Returns false if the transaction
  /// was aborted as a deadlock victim while acquiring a lock; the caller
  /// must then run the global abort. Lock-wait time is credited to `acct`
  /// when provided.
  ///
  /// With `acquire_locks` false (the queue-oriented CC backend, which takes
  /// every granule lock up front via AcquireGranules) the per-record Acquire
  /// is skipped; the LR-phase CPU is still charged per record, as the
  /// lock-table lookup that finds the granule already held.
  sim::Task<bool> ExecuteRequest(GlobalTxnId gid,
                                 const model::ClassParams& costs,
                                 const RequestSpec& request,
                                 PhaseAccounting* acct = nullptr,
                                 bool acquire_locks = true);

  /// Queue-oriented backend: acquires `granules` (pre-sorted ascending by
  /// the caller) for `gid` in order through the normal FIFO lock queues.
  /// Charges no CPU — the LR phase is still paid per record inside
  /// ExecuteRequest — so a zero-contention run costs exactly what 2PL does.
  /// Wait time is credited to `acct` when provided. Returns false only if a
  /// wait was cancelled (impossible when every transaction follows the same
  /// global (node, granule) acquisition order).
  sim::Task<bool> AcquireGranules(GlobalTxnId gid,
                                  const std::vector<db::GranuleId>& granules,
                                  bool update,
                                  PhaseAccounting* acct = nullptr);

  /// Rolls `gid` back at this node: undo I/O for each journaled granule,
  /// unlock processing, lock release.
  sim::Task<void> RollbackAt(GlobalTxnId gid, const model::ClassParams& costs);

  /// Unlock processing and release at commit time.
  sim::Task<void> ReleaseLocksAt(GlobalTxnId gid,
                                 const model::ClassParams& costs);

  // --- facilities -----------------------------------------------------------
  sim::SitePort simulation() const { return sim_; }
  sim::FcfsResource& cpu() { return cpu_; }
  sim::FcfsResource& db_disk() { return db_disk_; }
  sim::FcfsResource& log_disk() { return log_disk_ ? *log_disk_ : db_disk_; }
  bool has_separate_log_disk() const { return log_disk_ != nullptr; }
  db::Database& database() { return database_; }
  wal::Log& log() { return log_; }
  lock::LockManager& locks() { return *locks_; }
  sim::FifoMutex& tm_mutex() { return tm_mutex_; }

  /// Null when the node runs without a buffer (the paper's configuration).
  db::BufferPool* buffer() { return buffer_.get(); }

  /// Null when the DM pool is unlimited.
  sim::CountingSemaphore* dm_pool() { return dm_pool_.get(); }

  /// Picks `count` uniform random records at this node.
  std::vector<db::RecordId> PickRecords(int count, util::Rng* rng) const;

  void ResetStats();

 private:
  sim::SitePort sim_;
  int index_;
  model::SiteParams params_;
  sim::FcfsResource cpu_;
  sim::FcfsResource db_disk_;
  std::unique_ptr<sim::FcfsResource> log_disk_;  // null => shared with db
  db::Database database_;
  std::unique_ptr<db::BufferPool> buffer_;  // null => no buffer
  std::unique_ptr<sim::CountingSemaphore> dm_pool_;  // null => unlimited
  wal::Log log_;
  std::unique_ptr<lock::LockManager> owned_locks_;  // null => external
  lock::LockManager* locks_;
  sim::FifoMutex tm_mutex_;
};

}  // namespace carat::txn

#endif  // CARAT_TXN_NODE_H_
