// Global deadlock detection by edge-chasing probes, after Chandy-Misra-Haas
// (the variation used by the CARAT testbed).
//
// When a lock request blocks, the local detector first searches the local
// wait-for graph (lock/lock_manager.h). If the blockers include distributed
// transactions, probes are launched along the cross-site wait chain: a probe
// for (initiator, target) travels to the node where `target` is itself
// blocked; if the chain closes back on the initiator, a global deadlock
// exists and the initiator is aborted (its lock wait is cancelled, and its
// driver rolls the transaction back everywhere).
//
// Probes are simulated messages: every inter-node hop pays the network
// delay, and the TM that relays a probe pays a small CPU cost. A watchdog
// re-probes long-blocked transactions so that detection cannot be lost to
// in-flight races (probes that raced with wait-graph changes).

#ifndef CARAT_TXN_PROBES_H_
#define CARAT_TXN_PROBES_H_

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "txn/node.h"
#include "txn/registry.h"

namespace carat::txn {

class GlobalDeadlockDetector {
 public:
  struct Options {
    /// CPU charged at each node that relays or evaluates a probe.
    double probe_cpu_ms = 1.0;
    /// Watchdog period for re-probing long-blocked transactions. The
    /// on-block probes catch cycles as their closing edge forms; the
    /// watchdog only covers probe/edge races, so it can be lazy.
    double reprobe_interval_ms = 200.0;
    /// Hop budget per probe chain (bounds runaway chains; cycles in real
    /// workloads are short — the paper restricts its *model* to 2-cycles).
    int max_hops = 16;
  };

  GlobalDeadlockDetector(sim::Simulation& sim, net::Network& network,
                         TxnRegistry& registry, std::vector<Node*> nodes,
                         const Options& options);

  /// Hook for LockManager::on_block at node `node_index`: the waiter just
  /// blocked behind `holders`. Launches probes for distributed holders.
  void OnBlock(int node_index, GlobalTxnId waiter,
               const std::vector<GlobalTxnId>& holders);

  /// Starts the re-probe watchdog (call once after wiring up the nodes).
  void StartWatchdog();

  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t global_deadlocks() const { return global_deadlocks_; }
  void ResetStats() {
    probes_sent_ = 0;
    global_deadlocks_ = 0;
  }

 private:
  // Sends probe (initiator blocked at initiator_node) -> target, arriving at
  // the node where `target` waits after a message hop. `max_id` is the
  // largest transaction id seen along the chain: when a cycle closes, only
  // the probe whose initiator *is* that maximum declares the deadlock, so
  // concurrent probes around one cycle kill exactly one victim (the
  // standard uniqueness convention for edge-chasing detectors).
  void SendProbe(GlobalTxnId initiator, int initiator_node, GlobalTxnId target,
                 int from_node, int hops, GlobalTxnId max_id);
  // Evaluates an arrived probe at `node_index` (a network hop is paid only
  // when the probe actually crossed nodes).
  sim::Process EvaluateProbe(GlobalTxnId initiator, int initiator_node,
                             GlobalTxnId target, int from_node, int node_index,
                             int hops, GlobalTxnId max_id);
  // Aborts the initiator by cancelling its lock wait (if still blocked).
  sim::Process DeliverVictimAbort(GlobalTxnId initiator, int initiator_node,
                                  int from_node);
  sim::Process Watchdog();

  sim::Simulation& sim_;
  net::Network& network_;
  TxnRegistry& registry_;
  std::vector<Node*> nodes_;
  Options options_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t global_deadlocks_ = 0;
};

}  // namespace carat::txn

#endif  // CARAT_TXN_PROBES_H_
