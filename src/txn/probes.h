// Global deadlock detection by edge-chasing probes, after Chandy-Misra-Haas
// (the variation used by the CARAT testbed).
//
// When a lock request blocks, the local detector first searches the local
// wait-for graph (lock/lock_manager.h). Probes are then launched along the
// cross-site wait chain. Under the sharded kernel every piece of state a
// probe consults is site-local, so a probe is a *journey*: it routes to the
// target's home TM (which knows where the target currently operates), hops
// on to that node, and evaluates the wait state there; if the chain closes
// back on the initiator, a global deadlock exists and the initiator is
// aborted (its lock wait is cancelled, and its driver rolls the transaction
// back everywhere).
//
// Probes are simulated messages: every inter-node hop pays the network
// delay, and the TM that relays or evaluates a probe pays a small CPU cost.
// Per-site watchdogs re-probe long-blocked transactions so that detection
// cannot be lost to in-flight races (probes that raced with wait-graph
// changes).

#ifndef CARAT_TXN_PROBES_H_
#define CARAT_TXN_PROBES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "txn/node.h"
#include "txn/registry.h"

namespace carat::txn {

class GlobalDeadlockDetector {
 public:
  struct Options {
    /// CPU charged at each node that relays or evaluates a probe.
    double probe_cpu_ms = 1.0;
    /// Watchdog period for re-probing long-blocked transactions. The
    /// on-block probes catch cycles as their closing edge forms; the
    /// watchdog only covers probe/edge races, so it can be lazy.
    double reprobe_interval_ms = 200.0;
    /// Hop budget per probe chain (bounds runaway chains; cycles in real
    /// workloads are short — the paper restricts its *model* to 2-cycles).
    int max_hops = 16;
  };

  GlobalDeadlockDetector(sim::ShardedKernel& kernel, net::Network& network,
                         TxnRegistrySet& registry, std::vector<Node*> nodes,
                         const Options& options);

  /// Hook for LockManager::on_block at node `node_index`: the waiter just
  /// blocked behind `holders`. Launches a probe journey per holder, except
  /// for holders provably running at this very node (their probe would die
  /// on arrival, so the message is never sent — this is what keeps purely
  /// local workloads probe-free).
  void OnBlock(int node_index, GlobalTxnId waiter,
               const std::vector<GlobalTxnId>& holders);

  /// Starts one re-probe watchdog per site (call once after wiring up the
  /// nodes). Each watchdog lives on its own site's timeline and sweeps that
  /// site's lock manager only.
  void StartWatchdogs();

  // Sums over per-site slices; not safe during RunUntil.
  std::uint64_t probes_sent() const;
  std::uint64_t global_deadlocks() const;
  void ResetStats();

 private:
  struct alignas(64) SiteStats {
    std::uint64_t probes_sent = 0;
    std::uint64_t global_deadlocks = 0;
  };

  // One probe for (initiator, target) carrying the chain's running max id:
  // when a cycle closes, only the probe whose initiator *is* that maximum
  // declares the deadlock, so concurrent probes around one cycle kill
  // exactly one victim (the standard uniqueness convention for edge-chasing
  // detectors). The journey starts at `at_node`, routes via the target's
  // home, and evaluates where the target currently operates.
  sim::Process ProbeJourney(GlobalTxnId initiator, int initiator_node,
                            GlobalTxnId target, int at_node, int hops,
                            GlobalTxnId max_id);
  // Aborts the initiator by cancelling its lock wait (if still blocked) at
  // the node where it blocked.
  sim::Process DeliverVictimAbort(GlobalTxnId initiator, int initiator_node,
                                  int from_node);
  sim::Process WatchdogAt(int site);

  sim::ShardedKernel& kernel_;
  net::Network& network_;
  TxnRegistrySet& registry_;
  std::vector<Node*> nodes_;
  Options options_;
  std::unique_ptr<SiteStats[]> stats_;
};

}  // namespace carat::txn

#endif  // CARAT_TXN_PROBES_H_
