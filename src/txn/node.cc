#include "txn/node.h"

#include "util/random.h"

namespace carat::txn {

Node::Node(sim::SitePort sim, int index, const model::SiteParams& params,
           lock::LockManager* locks)
    : sim_(sim),
      index_(index),
      params_(params),
      cpu_(sim, params.name + "/cpu"),
      db_disk_(sim, params.name + "/db-disk"),
      log_disk_(params.separate_log_disk
                    ? std::make_unique<sim::FcfsResource>(sim, params.name +
                                                                   "/log-disk")
                    : nullptr),
      database_(params.num_granules, params.records_per_granule),
      buffer_(params.buffer_blocks > 0
                  ? std::make_unique<db::BufferPool>(params.buffer_blocks)
                  : nullptr),
      dm_pool_(params.dm_pool_size > 0
                   ? std::make_unique<sim::CountingSemaphore>(
                         sim, params.dm_pool_size)
                   : nullptr),
      owned_locks_(locks == nullptr
                       ? std::make_unique<lock::LockManager>(sim)
                       : nullptr),
      locks_(locks == nullptr ? owned_locks_.get() : locks),
      tm_mutex_(sim) {}

sim::Task<void> Node::TmHandle(double cpu_ms) {
  co_await tm_mutex_.Lock();
  co_await cpu_.Use(cpu_ms);
  tm_mutex_.Unlock();
}

sim::Task<void> Node::UseCpu(double cpu_ms) { co_await cpu_.Use(cpu_ms); }

sim::Task<void> Node::DbIo(int blocks) {
  for (int i = 0; i < blocks; ++i) co_await db_disk_.Use(params_.block_io_ms);
}

sim::Task<void> Node::LogIo(int blocks) {
  sim::FcfsResource& disk = log_disk();
  for (int i = 0; i < blocks; ++i) co_await disk.Use(params_.block_io_ms);
}

sim::Task<bool> Node::ExecuteRequest(GlobalTxnId gid,
                                     const model::ClassParams& costs,
                                     const RequestSpec& request,
                                     PhaseAccounting* acct,
                                     bool acquire_locks) {
  // DM phase: processing before the first lock request.
  co_await cpu_.Use(costs.dm_cpu_ms);

  const lock::LockMode mode =
      request.update ? lock::LockMode::kExclusive : lock::LockMode::kShared;

  for (const db::RecordId record : request.records) {
    const db::GranuleId granule = database_.GranuleOf(record);

    // LR phase: lock request processing, including local deadlock detection.
    co_await cpu_.Use(costs.lr_cpu_ms);
    if (acquire_locks) {
      const double before_lock = sim_.now();
      const lock::LockOutcome outcome =
          co_await locks_->Acquire(gid, granule, mode);
      if (acct != nullptr) acct->lock_wait_ms += sim_.now() - before_lock;
      if (outcome == lock::LockOutcome::kAborted) {
        co_return false;  // deadlock victim; caller rolls back everywhere
      }
    }

    // DMIO phase. Without a buffer (the paper's configuration) every granule
    // access is a physical block read; an update additionally journals the
    // before image and writes the block back (three I/Os total, Table 2).
    // With the buffer extension, resident blocks skip the read I/O.
    co_await cpu_.Use(costs.dmio_cpu_ms);
    const bool hit = buffer_ != nullptr && buffer_->Touch(granule);
    if (!hit) co_await DbIo(1);  // read the block
    if (request.update) {
      log_.LogBeforeImage(gid, granule, database_.ReadGranule(granule));
      co_await LogIo(1);  // journal write (write-ahead of the update)
      database_.Write(record, database_.Read(record) + 1);
      co_await DbIo(1);  // in-place database write
    }

    // DM phase between lock requests.
    co_await cpu_.Use(costs.dm_cpu_ms);
  }
  co_return true;
}

sim::Task<bool> Node::AcquireGranules(GlobalTxnId gid,
                                      const std::vector<db::GranuleId>& granules,
                                      bool update,
                                      PhaseAccounting* acct) {
  const lock::LockMode mode =
      update ? lock::LockMode::kExclusive : lock::LockMode::kShared;
  for (const db::GranuleId granule : granules) {
    const double before_lock = sim_.now();
    const lock::LockOutcome outcome =
        co_await locks_->Acquire(gid, granule, mode);
    if (acct != nullptr) acct->lock_wait_ms += sim_.now() - before_lock;
    if (outcome == lock::LockOutcome::kAborted) co_return false;
  }
  co_return true;
}

sim::Task<void> Node::RollbackAt(GlobalTxnId gid,
                                 const model::ClassParams& costs) {
  // TA phase: abort handling.
  co_await cpu_.Use(costs.ta_fixed_cpu_ms);
  const int restored = log_.Rollback(gid, &database_);
  // TAIO phase: per restored granule, read the journal and rewrite the
  // database block.
  for (int i = 0; i < restored; ++i) {
    co_await cpu_.Use(costs.ta_cpu_per_granule_ms);
    co_await LogIo(1);
    co_await DbIo(1);
  }
  co_await ReleaseLocksAt(gid, costs);
}

sim::Task<void> Node::ReleaseLocksAt(GlobalTxnId gid,
                                     const model::ClassParams& costs) {
  // UL phase: unlock processing proportional to the locks held here.
  const double locks_held = static_cast<double>(locks_->HeldCount(gid));
  if (locks_held > 0) {
    co_await cpu_.Use(costs.unlock_cpu_per_lock_ms * locks_held);
  }
  locks_->ReleaseAll(gid);
}

std::vector<db::RecordId> Node::PickRecords(int count, util::Rng* rng) const {
  std::vector<db::RecordId> records(count);
  const std::uint64_t total = static_cast<std::uint64_t>(database_.num_records());
  const bool skewed = params_.hot_data_fraction > 0.0 &&
                      params_.hot_data_fraction < 1.0 &&
                      params_.hot_access_fraction > 0.0;
  if (!skewed) {
    for (int i = 0; i < count; ++i) {
      records[i] = static_cast<db::RecordId>(rng->NextBounded(total));
    }
    return records;
  }
  // Hot/cold skew: hot_access_fraction of the accesses land uniformly in
  // the first hot_data_fraction of the records.
  const std::uint64_t hot =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     params_.hot_data_fraction * total));
  for (int i = 0; i < count; ++i) {
    if (rng->NextDouble() < params_.hot_access_fraction) {
      records[i] = static_cast<db::RecordId>(rng->NextBounded(hot));
    } else {
      records[i] =
          static_cast<db::RecordId>(hot + rng->NextBounded(total - hot));
    }
  }
  return records;
}

void Node::ResetStats() {
  cpu_.ResetStats();
  db_disk_.ResetStats();
  if (log_disk_) log_disk_->ResetStats();
  locks_->ResetStats();
  if (buffer_) buffer_->ResetStats();
  if (dm_pool_) dm_pool_->ResetStats();
}

}  // namespace carat::txn
