#include "txn/probes.h"

#include <algorithm>

#include "sim/task.h"

namespace carat::txn {

GlobalDeadlockDetector::GlobalDeadlockDetector(sim::ShardedKernel& kernel,
                                               net::Network& network,
                                               TxnRegistrySet& registry,
                                               std::vector<Node*> nodes,
                                               const Options& options)
    : kernel_(kernel),
      network_(network),
      registry_(registry),
      nodes_(std::move(nodes)),
      options_(options),
      stats_(std::make_unique<SiteStats[]>(
          static_cast<std::size_t>(kernel.num_sites()))) {}

void GlobalDeadlockDetector::OnBlock(int node_index, GlobalTxnId waiter,
                                     const std::vector<GlobalTxnId>& holders) {
  // Local-only cycles are handled synchronously by the lock manager before
  // the waiter is enqueued. Probes must chase *every* waiting holder, not
  // just distributed ones: a global cycle may pass through a local
  // transaction (local -> distributed -> remote -> ... -> local), and the
  // unique-victim rule needs the cycle's highest-id member to launch its
  // own probe. Probes to holders that are not blocked die on evaluation.
  for (const GlobalTxnId holder : holders) {
    if (registry_.HomeOf(holder) == node_index) {
      // The holder's coordinator is right here, so consult it before paying
      // for a message: a holder that is running at this node (not waiting)
      // cannot extend a wait chain, and its probe would die on arrival.
      const SiteRegistry& reg = registry_.at(node_index);
      const int current = reg.CurrentNode(holder);
      if (current < 0) continue;  // already finished
      if (current == node_index &&
          !nodes_[static_cast<std::size_t>(node_index)]->locks().IsWaiting(
              holder)) {
        continue;
      }
    }
    ++stats_[node_index].probes_sent;
    ProbeJourney(waiter, node_index, holder, node_index, 0,
                 std::max(waiter, holder));
  }
}

sim::Process GlobalDeadlockDetector::ProbeJourney(GlobalTxnId initiator,
                                                  int initiator_node,
                                                  GlobalTxnId target,
                                                  int at_node, int hops,
                                                  GlobalTxnId max_id) {
  if (hops >= options_.max_hops) co_return;
  // Leg 1: the target's home TM knows where the target currently operates.
  const int home = registry_.HomeOf(target);
  if (at_node != home) {
    co_await network_.Hop(home);
    at_node = home;
    co_await nodes_[static_cast<std::size_t>(at_node)]->TmHandle(
        options_.probe_cpu_ms);  // relay cost at the home TM
  }
  const int current = registry_.at(home).CurrentNode(target);
  if (current < 0) co_return;  // target finished: no cycle through it
  // Leg 2: evaluate at the node where the target operates (and would wait).
  if (current != at_node) {
    co_await network_.Hop(current);
    at_node = current;
  }
  co_await nodes_[static_cast<std::size_t>(at_node)]->TmHandle(
      options_.probe_cpu_ms);

  // Re-read the wait state after the delays: probes act on current truth.
  lock::LockManager& lm = nodes_[static_cast<std::size_t>(at_node)]->locks();
  if (!lm.IsWaiting(target)) co_return;
  for (const GlobalTxnId next : lm.WaitingFor(target)) {
    if (next == initiator) {
      // Cycle. Only the cycle's highest-id member declares the deadlock, so
      // simultaneous probes around the same cycle agree on one victim; the
      // suppressed probes rely on the winner (or the watchdog) acting.
      if (initiator >= max_id) {
        DeliverVictimAbort(initiator, initiator_node, at_node);
      }
      co_return;
    }
    // Keep chasing: `next` may be blocked at this or another node. Purely
    // local segments were already covered by local detection - but a chain
    // local -> distributed -> remote still needs the probe, so follow all.
    ++stats_[at_node].probes_sent;
    ProbeJourney(initiator, initiator_node, next, at_node, hops + 1,
                 std::max(max_id, next));
  }
}

sim::Process GlobalDeadlockDetector::DeliverVictimAbort(GlobalTxnId initiator,
                                                        int initiator_node,
                                                        int from_node) {
  if (from_node != initiator_node) co_await network_.Hop(initiator_node);
  co_await nodes_[static_cast<std::size_t>(initiator_node)]->TmHandle(
      options_.probe_cpu_ms);
  // The victim may have been granted the lock or aborted in the meantime;
  // CancelWait is a no-op then and the watchdog re-detects if needed.
  if (nodes_[static_cast<std::size_t>(initiator_node)]->locks().CancelWait(
          initiator)) {
    ++stats_[initiator_node].global_deadlocks;
  }
}

sim::Process GlobalDeadlockDetector::WatchdogAt(int site) {
  const sim::SitePort port{&kernel_, site};
  lock::LockManager& lm = nodes_[static_cast<std::size_t>(site)]->locks();
  for (;;) {
    co_await sim::Delay{port, options_.reprobe_interval_ms};
    // Re-launch probes for every transaction still blocked at this site;
    // stale probes die harmlessly, persistent global cycles are found.
    // WaitingTxns() is sorted, so the sweep order is deterministic.
    for (const GlobalTxnId waiter : lm.WaitingTxns()) {
      if (!lm.IsWaiting(waiter)) continue;
      OnBlock(site, waiter, lm.WaitingFor(waiter));
    }
  }
}

void GlobalDeadlockDetector::StartWatchdogs() {
  for (int s = 0; s < kernel_.num_sites(); ++s) WatchdogAt(s);
}

std::uint64_t GlobalDeadlockDetector::probes_sent() const {
  std::uint64_t total = 0;
  for (int s = 0; s < kernel_.num_sites(); ++s) total += stats_[s].probes_sent;
  return total;
}

std::uint64_t GlobalDeadlockDetector::global_deadlocks() const {
  std::uint64_t total = 0;
  for (int s = 0; s < kernel_.num_sites(); ++s) {
    total += stats_[s].global_deadlocks;
  }
  return total;
}

void GlobalDeadlockDetector::ResetStats() {
  for (int s = 0; s < kernel_.num_sites(); ++s) stats_[s] = SiteStats{};
}

}  // namespace carat::txn
