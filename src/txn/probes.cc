#include "txn/probes.h"

#include "sim/task.h"

namespace carat::txn {

GlobalDeadlockDetector::GlobalDeadlockDetector(sim::Simulation& sim,
                                               net::Network& network,
                                               TxnRegistry& registry,
                                               std::vector<Node*> nodes,
                                               const Options& options)
    : sim_(sim),
      network_(network),
      registry_(registry),
      nodes_(std::move(nodes)),
      options_(options) {}

void GlobalDeadlockDetector::OnBlock(int node_index, GlobalTxnId waiter,
                                     const std::vector<GlobalTxnId>& holders) {
  // Local-only cycles are handled synchronously by the lock manager before
  // the waiter is enqueued. Probes must chase *every* waiting holder, not
  // just distributed ones: a global cycle may pass through a local
  // transaction (local -> distributed -> remote -> ... -> local), and the
  // unique-victim rule below needs the cycle's highest-id member to launch
  // its own probe. Probes to holders that are not blocked die immediately.
  for (const GlobalTxnId holder : holders) {
    if (registry_.Find(holder) == nullptr) continue;
    SendProbe(waiter, node_index, holder, node_index, 0,
              std::max(waiter, holder));
  }
}

void GlobalDeadlockDetector::SendProbe(GlobalTxnId initiator,
                                       int initiator_node, GlobalTxnId target,
                                       int from_node, int hops,
                                       GlobalTxnId max_id) {
  if (hops >= options_.max_hops) return;
  const int target_node = registry_.WaitingNode(target);
  if (target_node < 0) return;  // target is running, not blocked: no cycle
  ++probes_sent_;
  EvaluateProbe(initiator, initiator_node, target, from_node, target_node,
                hops + 1, max_id);
}

sim::Process GlobalDeadlockDetector::EvaluateProbe(
    GlobalTxnId initiator, int initiator_node, GlobalTxnId target,
    int from_node, int node_index, int hops, GlobalTxnId max_id) {
  // The probe travels as a message to the node where the target waits (no
  // message if the chain continues locally) and is evaluated by that
  // node's TM.
  if (from_node != node_index) co_await network_.Hop();
  co_await nodes_[node_index]->TmHandle(options_.probe_cpu_ms);

  // Re-read the wait state after the delays: probes act on current truth.
  lock::LockManager& lm = nodes_[node_index]->locks();
  if (!lm.IsWaiting(target)) co_return;
  for (const GlobalTxnId next : lm.WaitingFor(target)) {
    if (next == initiator) {
      // Cycle. Only the cycle's highest-id member declares the deadlock, so
      // simultaneous probes around the same cycle agree on one victim; the
      // suppressed probes rely on the winner (or the watchdog) acting.
      if (initiator >= max_id) {
        DeliverVictimAbort(initiator, initiator_node, node_index);
      }
      co_return;
    }
    const TxnDescriptor* desc = registry_.Find(next);
    if (desc == nullptr) continue;
    // Keep chasing: `next` may be blocked at this or another node. Purely
    // local transactions can only continue the chain at this same node, and
    // such segments were already covered by local detection - but a chain
    // local -> distributed -> remote still needs the probe, so follow all.
    SendProbe(initiator, initiator_node, next, node_index, hops,
              std::max(max_id, next));
  }
}

sim::Process GlobalDeadlockDetector::DeliverVictimAbort(GlobalTxnId initiator,
                                                        int initiator_node,
                                                        int from_node) {
  if (from_node != initiator_node) co_await network_.Hop();
  co_await nodes_[initiator_node]->TmHandle(options_.probe_cpu_ms);
  // The victim may have been granted the lock or aborted in the meantime;
  // CancelWait is a no-op then and the watchdog re-detects if needed.
  if (nodes_[initiator_node]->locks().CancelWait(initiator)) {
    ++global_deadlocks_;
  }
}

sim::Process GlobalDeadlockDetector::Watchdog() {
  for (;;) {
    co_await sim::Delay{sim_, options_.reprobe_interval_ms};
    for (Node* node : nodes_) {
      lock::LockManager& lm = node->locks();
      // Re-launch probes for every transaction still blocked at this node;
      // stale probes die harmlessly, persistent global cycles are found.
      for (const GlobalTxnId waiter : registry_.WaitersAt(node->index())) {
        if (!lm.IsWaiting(waiter)) continue;
        OnBlock(node->index(), waiter, lm.WaitingFor(waiter));
      }
    }
  }
}

void GlobalDeadlockDetector::StartWatchdog() { Watchdog(); }

}  // namespace carat::txn
