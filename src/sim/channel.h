// Single-consumer mailboxes for message passing between testbed processes.

#ifndef CARAT_SIM_CHANNEL_H_
#define CARAT_SIM_CHANNEL_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <utility>

#include "sim/simulation.h"

namespace carat::sim {

/// Unbounded FIFO mailbox with at most one waiting receiver. Senders never
/// block; a waiting receiver is resumed through the event queue at the
/// current time, preserving deterministic ordering.
template <typename T>
class Channel {
 public:
  explicit Channel(SitePort sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a message, waking the receiver if one is parked.
  void Send(T value) {
    queue_.push_back(std::move(value));
    if (receiver_) {
      const std::coroutine_handle<> h = receiver_;
      receiver_ = nullptr;
      sim_.Schedule(0.0, h);
    }
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Awaitable returned by Receive().
  struct Receiver {
    Channel& channel;

    bool await_ready() const noexcept { return !channel.queue_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      assert(channel.receiver_ == nullptr && "channel already has a receiver");
      channel.receiver_ = h;
    }
    T await_resume() {
      assert(!channel.queue_.empty());
      T value = std::move(channel.queue_.front());
      channel.queue_.pop_front();
      return value;
    }
  };

  /// co_await chan.Receive() yields the next message, waiting if necessary.
  Receiver Receive() { return Receiver{*this}; }

 private:
  SitePort sim_;
  std::deque<T> queue_;
  std::coroutine_handle<> receiver_ = nullptr;
};

}  // namespace carat::sim

#endif  // CARAT_SIM_CHANNEL_H_
