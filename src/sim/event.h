// Small-buffer callable for simulation events.
//
// The kernel schedules millions of events per run, almost all of which are
// coroutine resumptions (one coroutine_handle, 8 bytes) or tiny completion
// lambdas (a this-pointer plus a few words). std::function heap-allocates
// for anything beyond its SSO and drags in RTTI; SmallFn stores callables up
// to kInlineSize bytes inline and only falls back to the heap for oversized
// state. Move-only, invoke-once-or-more, no allocation on the hot path.

#ifndef CARAT_SIM_EVENT_H_
#define CARAT_SIM_EVENT_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace carat::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::remove_cvref_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineSize &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(buffer_)) Decayed(std::forward<F>(fn));
      ops_ = &InlineOps<Decayed>::ops;
    } else {
      // Oversized or over-aligned callable: one heap cell, pointer inline.
      ::new (static_cast<void*>(buffer_))
          Decayed*(new Decayed(std::forward<F>(fn)));
      ops_ = &HeapOps<Decayed>::ops;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buffer_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* storage);
  };

  template <typename F>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(static_cast<F*>(storage)))(); }
    static void Relocate(void* dst, void* src) {
      F* from = std::launder(static_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* storage) {
      std::launder(static_cast<F*>(storage))->~F();
    }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  struct HeapOps {
    static F* Ptr(void* storage) {
      return *std::launder(static_cast<F**>(storage));
    }
    static void Invoke(void* storage) { (*Ptr(storage))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) F*(Ptr(src));
    }
    static void Destroy(void* storage) { delete Ptr(storage); }
    static constexpr Ops ops = {&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace carat::sim

#endif  // CARAT_SIM_EVENT_H_
