// Synchronization primitives for simulation processes.

#ifndef CARAT_SIM_SYNC_H_
#define CARAT_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <deque>

#include "sim/simulation.h"

namespace carat::sim {

/// FIFO mutex: serializes critical sections of variable duration (e.g. the
/// single TM server process handling one message at a time).
class FifoMutex {
 public:
  explicit FifoMutex(SitePort sim) : sim_(sim) {}
  FifoMutex(const FifoMutex&) = delete;
  FifoMutex& operator=(const FifoMutex&) = delete;

  struct LockAwaiter {
    FifoMutex& mutex;
    bool await_ready() {
      if (!mutex.locked_) {
        mutex.locked_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      mutex.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// co_await Lock(); ... Unlock();
  LockAwaiter Lock() { return LockAwaiter{*this}; }

  void Unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    const std::coroutine_handle<> next = waiters_.front();
    waiters_.pop_front();
    sim_.Schedule(0.0, next);  // lock stays held, ownership transfers
  }

  bool locked() const { return locked_; }
  std::size_t waiters() const { return waiters_.size(); }

 private:
  SitePort sim_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// FIFO counting semaphore (e.g. a fixed pool of DM servers: a permit is a
/// server, held by a transaction for its lifetime at the node).
class CountingSemaphore {
 public:
  CountingSemaphore(SitePort sim, int permits)
      : sim_(sim), available_(permits) {}
  CountingSemaphore(const CountingSemaphore&) = delete;
  CountingSemaphore& operator=(const CountingSemaphore&) = delete;

  struct AcquireAwaiter {
    CountingSemaphore& sem;
    bool await_ready() {
      ++sem.acquires_;
      if (sem.available_ > 0) {
        --sem.available_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++sem.waits_;
      sem.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// co_await Acquire(); ... Release();
  AcquireAwaiter Acquire() { return AcquireAwaiter{*this}; }

  void Release() {
    if (!waiters_.empty()) {
      const std::coroutine_handle<> next = waiters_.front();
      waiters_.pop_front();
      sim_.Schedule(0.0, next);  // permit transfers directly
      return;
    }
    ++available_;
  }

  int available() const { return available_; }
  std::size_t waiting() const { return waiters_.size(); }
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t waits() const { return waits_; }
  void ResetStats() {
    acquires_ = 0;
    waits_ = 0;
  }

 private:
  SitePort sim_;
  int available_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::uint64_t acquires_ = 0;
  std::uint64_t waits_ = 0;
};

/// Countdown gate: one waiter blocks until `Signal()` has been called the
/// configured number of times (used to join parallel 2PC legs).
class Gate {
 public:
  explicit Gate(int count) : remaining_(count) {}

  void Signal() {
    assert(remaining_ > 0);
    --remaining_;
    if (remaining_ == 0 && waiter_) {
      const std::coroutine_handle<> h = waiter_;
      waiter_ = nullptr;
      h.resume();  // same-timestamp continuation
    }
  }

  struct WaitAwaiter {
    Gate& gate;
    bool await_ready() const noexcept { return gate.remaining_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(gate.waiter_ == nullptr);
      gate.waiter_ = h;
    }
    void await_resume() const noexcept {}
  };

  WaitAwaiter Wait() { return WaitAwaiter{*this}; }

 private:
  int remaining_;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace carat::sim

#endif  // CARAT_SIM_SYNC_H_
