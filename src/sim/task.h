// Lazy awaitable tasks with continuation chaining.
//
// Process (process.h) is a detached root coroutine; Task<T> is what roots
// and other tasks co_await to compose protocol logic ("execute request",
// "run two-phase commit", ...). A Task starts suspended, runs when awaited,
// and resumes its awaiter by symmetric transfer when it finishes.

#ifndef CARAT_SIM_TASK_H_
#define CARAT_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace carat::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace internal {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { std::terminate(); }
};

}  // namespace internal

/// A lazily started coroutine returning T. Must be co_awaited exactly once;
/// the frame is destroyed by the Task destructor.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase {
    std::optional<T> value;
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // start the task
  }
  T await_resume() {
    assert(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase {
    Task get_return_object() noexcept {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {}

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace carat::sim

#endif  // CARAT_SIM_TASK_H_
