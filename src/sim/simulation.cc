#include "sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>
#include <utility>

namespace carat::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Which kernel/site the current thread is executing an event for. Stamps
// the origin of Schedule() calls; {nullptr, -1} outside event execution
// (setup code on the driving thread schedules with the destination's clock
// and sequence counter, which is deterministic because setup runs in
// program order before any shard thread exists).
struct ExecContext {
  const ShardedKernel* kernel = nullptr;
  int site = -1;
};
thread_local ExecContext tls_exec;

}  // namespace

ShardedKernel::ShardedKernel(int num_sites, int num_shards, double lookahead_ms)
    : num_sites_(num_sites),
      num_shards_(num_shards),
      lookahead_ms_(lookahead_ms) {
  assert(num_sites_ >= 1);
  assert(num_shards_ >= 1 && num_shards_ <= num_sites_);
  assert(lookahead_ms_ >= 0.0 && "lookahead must be >= 0 and non-NaN");
  // A zero lookahead admits zero-delay cross-site messages, for which no
  // conservative window exists: the kernel must run serially.
  assert((lookahead_ms_ > 0.0 || num_shards_ == 1) &&
         "zero lookahead requires a single shard");
  per_site_ = std::make_unique<PerSite[]>(static_cast<std::size_t>(num_sites_));
  shards_ = std::make_unique<Shard[]>(static_cast<std::size_t>(num_shards_));
}

ShardedKernel::~ShardedKernel() = default;

int ShardedKernel::current_site() const {
  return tls_exec.kernel == this ? tls_exec.site : -1;
}

void ShardedKernel::PushLocal(Shard& shard, Event ev) {
  shard.heap.push_back(std::move(ev));
  std::push_heap(shard.heap.begin(), shard.heap.end(), After);
}

void ShardedKernel::Schedule(int site, double delay, SmallFn fn) {
  assert(site >= 0 && site < num_sites_);
  assert(delay >= 0.0 && "negative or NaN event delay");  // NaN fails >=
  const bool inside = tls_exec.kernel == this && tls_exec.site >= 0;
  const int origin = inside ? tls_exec.site : site;
  if (origin != site) {
    // Conservative sync soundness: every cross-site message must arrive at
    // or beyond the lookahead horizon. The check depends only on workload
    // configuration, so it trips (or not) identically at every shard count.
    assert(delay >= lookahead_ms_ && "cross-site delay below lookahead");
  }
  PerSite& ps = per_site_[origin];
  Event ev{ps.clock + delay, site, origin, ps.next_seq++, std::move(fn)};
  Shard& dest = shards_[site % num_shards_];
  if (!inside || origin % num_shards_ == site % num_shards_) {
    // Same shard (or setup time, when no shard threads exist): the calling
    // thread owns the destination heap.
    PushLocal(dest, std::move(ev));
  } else {
    const std::scoped_lock lock(dest.inbox_mu);
    dest.inbox.push_back(std::move(ev));
  }
}

void ShardedKernel::ExecuteOne(Shard& shard) {
  std::pop_heap(shard.heap.begin(), shard.heap.end(), After);
  Event ev = std::move(shard.heap.back());
  shard.heap.pop_back();
  PerSite& ps = per_site_[ev.site];
  ps.clock = ev.time;
  ++ps.executed;
  tls_exec = ExecContext{this, ev.site};
  ev.fn();
}

void ShardedKernel::RunSerial(double until) {
  const ExecContext saved = tls_exec;
  Shard& shard = shards_[0];
  while (!shard.heap.empty() && shard.heap.front().time <= until) {
    ExecuteOne(shard);
  }
  tls_exec = saved;
}

void ShardedKernel::ComputeHorizon(double until) noexcept {
  double gvt = kInf;
  for (int s = 0; s < num_shards_; ++s) gvt = std::min(gvt, shards_[s].head);
  done_ = !(gvt <= until);  // all heaps empty or strictly beyond the run
  horizon_ = gvt + lookahead_ms_;
}

void ShardedKernel::RunShard(int shard_index, double until, Barrier& barrier) {
  const ExecContext saved = tls_exec;
  Shard& shard = shards_[shard_index];
  for (;;) {
    // Drain cross-shard arrivals into the heap. Arrival order in the inbox
    // is thread-dependent, but the heap re-orders by the total
    // (time, origin_site, origin_seq) key, so the pop sequence is not.
    {
      const std::scoped_lock lock(shard.inbox_mu);
      for (Event& ev : shard.inbox) PushLocal(shard, std::move(ev));
      shard.inbox.clear();
    }
    shard.head = shard.heap.empty() ? kInf : shard.heap.front().time;
    barrier.arrive_and_wait();  // completion computes GVT -> horizon_/done_
    if (done_) break;
    while (!shard.heap.empty() && shard.heap.front().time <= until &&
           shard.heap.front().time < horizon_) {
      ExecuteOne(shard);
    }
    // Quiesce sends before the next drain so a round observes either all or
    // none of a peer's traffic; the recomputed horizon from pre-execution
    // heads is overwritten at the top of the next round before anyone reads
    // it.
    barrier.arrive_and_wait();
  }
  tls_exec = saved;
}

void ShardedKernel::RunUntil(double until) {
  if (num_shards_ == 1) {
    RunSerial(until);
  } else {
    Barrier barrier(num_shards_, Completion{this, until});
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(num_shards_ - 1));
    for (int s = 1; s < num_shards_; ++s) {
      workers.emplace_back(
          [this, s, until, &barrier]() { RunShard(s, until, barrier); });
    }
    RunShard(0, until, barrier);
    for (std::thread& t : workers) t.join();
  }
  for (int s = 0; s < num_sites_; ++s) {
    if (per_site_[s].clock < until) per_site_[s].clock = until;
  }
}

std::uint64_t ShardedKernel::events_executed() const {
  std::uint64_t total = 0;
  for (int s = 0; s < num_sites_; ++s) total += per_site_[s].executed;
  return total;
}

}  // namespace carat::sim
