#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace carat::sim {

void Simulation::Schedule(double delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  // Moving the callback out keeps it alive if the event schedules more work.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulation::RunUntil(double until) {
  while (!queue_.empty() && queue_.top().time <= until) Step();
  if (now_ < until) now_ = until;
}

}  // namespace carat::sim
