#include "sim/resource.h"

namespace carat::sim {

void FcfsResource::Enqueue(std::coroutine_handle<> h, double service_ms) {
  queue_.push_back(Waiter{h, service_ms});
  if (!busy_) StartNext();
}

void FcfsResource::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  serving_since_ = sim_.now();
  const Waiter w = queue_.front();
  queue_.pop_front();
  sim_.Schedule(w.service_ms, [this, w]() {
    busy_ms_ += sim_.now() - serving_since_;
    ++completions_;
    // Start the successor before resuming the finished job so the server
    // never idles between back-to-back requests.
    StartNext();
    w.handle.resume();
  });
}

double FcfsResource::BusyMs() const {
  double total = busy_ms_;
  if (busy_) total += sim_.now() - serving_since_;
  return total;
}

void FcfsResource::ResetStats() {
  busy_ms_ = 0.0;
  completions_ = 0;
  if (busy_) serving_since_ = sim_.now();
}

}  // namespace carat::sim
