// Fire-and-forget coroutine processes for the simulation.
//
// A Process is a detached coroutine: it starts eagerly, owns its own frame,
// and destroys itself when it finishes. Long-running testbed servers are
// written as `Process Server::Run() { for (;;) { ... co_await ...; } }`.

#ifndef CARAT_SIM_PROCESS_H_
#define CARAT_SIM_PROCESS_H_

#include <coroutine>
#include <exception>

namespace carat::sim {

/// Detached simulation process. The returned object is just a tag; the
/// coroutine keeps running on the event queue after it is discarded.
struct Process {
  struct promise_type {
    Process get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
};

}  // namespace carat::sim

#endif  // CARAT_SIM_PROCESS_H_
