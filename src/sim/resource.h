// FCFS single-server resources (CPU, disks) with utilization accounting.

#ifndef CARAT_SIM_RESOURCE_H_
#define CARAT_SIM_RESOURCE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/simulation.h"

namespace carat::sim {

/// A first-come-first-served single server. Processes call
/// `co_await resource.Use(service_ms)` to queue for and hold the server for
/// `service_ms` of simulated time.
class FcfsResource {
 public:
  FcfsResource(SitePort sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  FcfsResource(const FcfsResource&) = delete;
  FcfsResource& operator=(const FcfsResource&) = delete;

  struct UseAwaiter {
    FcfsResource& res;
    double service_ms;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      res.Enqueue(h, service_ms);
    }
    void await_resume() const noexcept {}
  };

  /// Queue for the server and occupy it for `service_ms`.
  UseAwaiter Use(double service_ms) { return UseAwaiter{*this, service_ms}; }

  /// Completed service requests since the last ResetStats().
  std::uint64_t completions() const { return completions_; }

  /// Busy time since the last ResetStats(), including the in-progress
  /// portion of the current service.
  double BusyMs() const;

  /// Queue length including the job in service.
  std::size_t QueueLength() const { return queue_.size() + (busy_ ? 1 : 0); }

  /// Forgets accumulated statistics (used to discard warm-up).
  void ResetStats();

  const std::string& name() const { return name_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    double service_ms;
  };

  void Enqueue(std::coroutine_handle<> h, double service_ms);
  void StartNext();

  SitePort sim_;
  std::string name_;
  std::deque<Waiter> queue_;
  bool busy_ = false;
  double serving_since_ = 0.0;
  double busy_ms_ = 0.0;
  std::uint64_t completions_ = 0;
};

}  // namespace carat::sim

#endif  // CARAT_SIM_RESOURCE_H_
