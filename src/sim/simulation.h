// Discrete-event simulation kernel, sharded by site.
//
// The testbed processes (user TRs, TM servers, DM servers, the commit and
// deadlock machinery) are C++20 coroutines driven by event heaps. Events are
// arbitrary callbacks, so resources and channels can chain work (complete one
// service, start the next) without helper coroutines. Time is in
// milliseconds, matching the model.
//
// The kernel owns one timeline per CARAT *site* and runs sites on up to
// `num_shards` OS threads (site -> shard is `site % num_shards`). Shards
// synchronize conservatively: the inter-site communication delay is the
// lookahead L, every cross-site message pays at least L, and each BSP round
// executes only events strictly below GVT + L (GVT = min heap head across
// shards). No rollback is ever needed, and because cross-shard delivery is
// ordered by the (time, origin site, origin seq) key -- never by thread
// arrival -- the per-site event sequences are byte-identical at any shard
// count, including the serial num_shards == 1 path.

#ifndef CARAT_SIM_SIMULATION_H_
#define CARAT_SIM_SIMULATION_H_

#include <barrier>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event.h"

namespace carat::sim {

class ShardedKernel {
 public:
  static constexpr double kNoLookahead =
      std::numeric_limits<double>::infinity();

  /// `lookahead_ms` is the minimum delay every cross-site message must pay.
  /// Pass kNoLookahead (infinity) when the workload provably never sends
  /// cross-site events: shards then free-run to the horizon, and any
  /// cross-site Schedule trips an assert. `lookahead_ms == 0` is only legal
  /// with `num_shards == 1` (no conservative window exists).
  ShardedKernel(int num_sites, int num_shards, double lookahead_ms);
  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;
  ~ShardedKernel();

  int num_sites() const { return num_sites_; }
  int num_shards() const { return num_shards_; }
  double lookahead_ms() const { return lookahead_ms_; }

  /// Current simulated time (ms) on `site`'s timeline. Site clocks advance
  /// independently during a run and are aligned to `until` afterwards.
  double now(int site) const { return per_site_[site].clock; }

  /// Schedules `fn` on `site`'s timeline after `delay` ms (>= 0, non-NaN;
  /// enforced). When called from inside an event, the sending site's clock
  /// and sequence counter stamp the event; cross-site sends must pay at
  /// least the lookahead (enforced).
  void Schedule(int site, double delay, SmallFn fn);

  /// Schedules a coroutine resumption on `site`'s timeline.
  void Schedule(int site, double delay, std::coroutine_handle<> handle) {
    Schedule(site, delay, SmallFn([handle]() { handle.resume(); }));
  }

  /// Runs events until every heap empties or passes `until`. Events
  /// scheduled beyond `until` remain pending. Spawns `num_shards - 1`
  /// worker threads for the duration of the call; shard 0 runs on the
  /// caller. Serial when num_shards == 1.
  void RunUntil(double until);

  /// Total events executed so far, summed over sites. Identical for the
  /// same seed at any shard count. Not safe to call during RunUntil.
  std::uint64_t events_executed() const;

  /// Site of the event currently executing on this thread in this kernel,
  /// or -1 when called from outside event execution.
  int current_site() const;

 private:
  struct Event {
    double time;
    std::int32_t site;         // destination timeline
    std::int32_t origin_site;  // stamping site (delivery-order key)
    std::uint64_t origin_seq;
    SmallFn fn;
  };
  // Min-heap order: (time, origin_site, origin_seq). The pair
  // (origin_site, origin_seq) is unique, so the order is total and the pop
  // sequence is independent of heap insertion order.
  static bool After(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.origin_site != b.origin_site) return a.origin_site > b.origin_site;
    return a.origin_seq > b.origin_seq;
  }

  struct alignas(64) PerSite {
    double clock = 0.0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
  };

  struct alignas(64) Shard {
    std::vector<Event> heap;  // binary heap ordered by After()
    double head = 0.0;        // published heap-head time, +inf when empty
    std::mutex inbox_mu;
    std::vector<Event> inbox;  // cross-shard sends, drained each round
  };

  struct Completion {
    ShardedKernel* kernel;
    double until;
    void operator()() noexcept { kernel->ComputeHorizon(until); }
  };
  using Barrier = std::barrier<Completion>;

  void PushLocal(Shard& shard, Event ev);
  void ExecuteOne(Shard& shard);
  void RunSerial(double until);
  void RunShard(int shard_index, double until, Barrier& barrier);
  void ComputeHorizon(double until) noexcept;

  const int num_sites_;
  const int num_shards_;
  const double lookahead_ms_;
  std::unique_ptr<PerSite[]> per_site_;
  std::unique_ptr<Shard[]> shards_;
  // Round state, written only by the barrier completion step.
  double horizon_ = 0.0;
  bool done_ = false;
};

/// Value handle onto one site's timeline: everything a site-local process or
/// resource needs from the kernel. Copyable, 16 bytes.
struct SitePort {
  ShardedKernel* kernel = nullptr;
  int site = 0;

  double now() const { return kernel->now(site); }
  void Schedule(double delay, SmallFn fn) const {
    kernel->Schedule(site, delay, std::move(fn));
  }
  void Schedule(double delay, std::coroutine_handle<> handle) const {
    kernel->Schedule(site, delay, handle);
  }
};

/// Awaitable: suspend the current process for `delay` ms on its own site's
/// timeline (zero/negative delays complete inline; same-site only -- site
/// hops go through net::Network, which always suspends).
///   co_await Delay{sim, 5.0};
struct Delay {
  SitePort sim;
  double delay_ms;

  bool await_ready() const noexcept { return delay_ms <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim.Schedule(delay_ms, h);
  }
  void await_resume() const noexcept {}
};

/// Single-site, single-shard facade over ShardedKernel preserving the
/// original serial API. Converts implicitly to its site-0 SitePort, so the
/// primitives (Delay, FcfsResource, FifoMutex, ...) accept it directly.
class Simulation : public ShardedKernel {
 public:
  Simulation() : ShardedKernel(/*num_sites=*/1, /*num_shards=*/1,
                               /*lookahead_ms=*/0.0) {}

  double now() const { return ShardedKernel::now(0); }

  void Schedule(double delay, SmallFn fn) {
    ShardedKernel::Schedule(0, delay, std::move(fn));
  }
  void Schedule(double delay, std::coroutine_handle<> handle) {
    ShardedKernel::Schedule(0, delay, handle);
  }

  operator SitePort() { return SitePort{this, 0}; }  // NOLINT
};

}  // namespace carat::sim

#endif  // CARAT_SIM_SIMULATION_H_
