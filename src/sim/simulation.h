// Discrete-event simulation kernel.
//
// The testbed processes (user TRs, TM servers, DM servers, the commit and
// deadlock machinery) are C++20 coroutines driven by a single event queue.
// Events are arbitrary callbacks, so resources and channels can chain work
// (complete one service, start the next) without helper coroutines.
// Time is in milliseconds, matching the model.

#ifndef CARAT_SIM_SIMULATION_H_
#define CARAT_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace carat::sim {

/// The simulation clock and event queue. Ties break in schedule order, so
/// runs are fully deterministic.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (ms).
  double now() const { return now_; }

  /// Schedules `fn` to run after `delay` ms (>= 0).
  void Schedule(double delay, std::function<void()> fn);

  /// Schedules a coroutine resumption after `delay` ms.
  void Schedule(double delay, std::coroutine_handle<> handle) {
    Schedule(delay, [handle]() { handle.resume(); });
  }

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events scheduled beyond `until` remain pending.
  void RunUntil(double until);

  /// Executes the single next event. Returns false if the queue is empty.
  bool Step();

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

/// Awaitable: suspend the current process for `delay` ms.
///   co_await Delay{sim, 5.0};
struct Delay {
  Simulation& sim;
  double delay_ms;

  bool await_ready() const noexcept { return delay_ms <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim.Schedule(delay_ms, h);
  }
  void await_resume() const noexcept {}
};

}  // namespace carat::sim

#endif  // CARAT_SIM_SIMULATION_H_
