#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "model/demands.h"
#include "model/lock_model.h"
#include "model/solver.h"
#include "model/transition.h"
#include "model/yao.h"
#include "util/approx.h"
#include "workload/spec.h"

namespace carat::model {
namespace {

// ---------------------------------------------------------------- visits ---

TEST(VisitCounts, LocalTransactionNoContention) {
  // n = l = 4 requests, q = 4 I/Os per request, Pb = Pd = 0.
  TransitionInputs in;
  in.local_requests = 4;
  in.io_per_request = 4.0;
  const TransitionMatrix p = BuildLocalOrCoordinatorMatrix(in);
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(p, &v));
  EXPECT_NEAR(v[Index(Phase::kUT)], 1.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kINIT)], 1.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kU)], 5.0, 1e-10);      // n + 1
  EXPECT_NEAR(v[Index(Phase::kTM)], 9.0, 1e-10);     // 2n + 1
  EXPECT_NEAR(v[Index(Phase::kDM)], 20.0, 1e-10);    // l (q + 1)
  EXPECT_NEAR(v[Index(Phase::kLR)], 16.0, 1e-10);    // l q = N_lk
  EXPECT_NEAR(v[Index(Phase::kDMIO)], 16.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kLW)], 0.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kRW)], 0.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kTC)], 1.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kTCIO)], 1.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kTA)], 0.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kUL)], 1.0, 1e-10);
}

TEST(VisitCounts, CoordinatorSplitsLocalAndRemote) {
  TransitionInputs in;
  in.local_requests = 3;
  in.remote_requests = 2;
  in.io_per_request = 4.0;
  const TransitionMatrix p = BuildLocalOrCoordinatorMatrix(in);
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(p, &v));
  EXPECT_NEAR(v[Index(Phase::kTM)], 11.0, 1e-10);  // 2 * 5 + 1
  EXPECT_NEAR(v[Index(Phase::kDM)], 3.0 * 5.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kRW)], 2.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kLR)], 12.0, 1e-10);  // only local I/O locks
}

TEST(VisitCounts, SlaveChainShape) {
  TransitionInputs in;
  in.local_requests = 2;
  in.io_per_request = 4.0;
  const TransitionMatrix p = BuildSlaveMatrix(in);
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(p, &v));
  EXPECT_NEAR(v[Index(Phase::kTM)], 5.0, 1e-10);  // 2 l + 1
  EXPECT_NEAR(v[Index(Phase::kDM)], 10.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kRW)], 2.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kU)], 0.0, 1e-10);   // slaves have no user phase
  EXPECT_NEAR(v[Index(Phase::kINIT)], 0.0, 1e-10);
  EXPECT_NEAR(v[Index(Phase::kTC)], 1.0, 1e-10);
}

TEST(VisitCounts, DeadlocksReduceCommitVisits) {
  TransitionInputs in;
  in.local_requests = 8;
  in.io_per_request = 4.0;
  in.pb = 0.1;
  in.pd = 0.05;
  const TransitionMatrix p = BuildLocalOrCoordinatorMatrix(in);
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(p, &v));
  // Per execution, commit + abort probabilities sum to one.
  EXPECT_NEAR(v[Index(Phase::kTCIO)] + v[Index(Phase::kTAIO)], 1.0, 1e-10);
  EXPECT_GT(v[Index(Phase::kTAIO)], 0.0);
  EXPECT_LT(v[Index(Phase::kTCIO)], 1.0);
  EXPECT_GT(v[Index(Phase::kLW)], 0.0);
  // An aborted execution issues fewer lock requests than N_lk on average.
  EXPECT_LT(v[Index(Phase::kLR)], 32.0);
}

TEST(VisitCounts, RowsOfTransitionMatrixAreStochastic) {
  TransitionInputs in;
  in.local_requests = 5;
  in.remote_requests = 3;
  in.io_per_request = 3.7;
  in.pb = 0.2;
  in.pd = 0.1;
  in.pra = 0.05;
  for (const TransitionMatrix& p :
       {BuildLocalOrCoordinatorMatrix(in), BuildSlaveMatrix(in)}) {
    for (int from = 0; from < kNumPhases; ++from) {
      double row = 0.0;
      for (int to = 0; to < kNumPhases; ++to) row += p[from][to];
      // Rows of unreachable phases (e.g. U/INIT for slaves) are all-zero;
      // every reachable phase must have a stochastic row.
      if (row != 0.0) EXPECT_NEAR(row, 1.0, 1e-12) << "row " << from;
    }
  }
}

// ------------------------------------------------------------------- Yao ---

TEST(Yao, ZeroSelectionTouchesNothing) {
  EXPECT_DOUBLE_EQ(YaoExpectedBlocks(18000, 3000, 0), 0.0);
}

TEST(Yao, SelectingEverythingTouchesAllBlocks) {
  EXPECT_NEAR(YaoExpectedBlocks(18000, 3000, 18000), 3000.0, 1e-6);
}

TEST(Yao, SingleRecordTouchesOneBlock) {
  EXPECT_NEAR(YaoExpectedBlocks(18000, 3000, 1), 1.0, 1e-9);
}

TEST(Yao, SmallSelectionNearlyDistinct) {
  // The paper notes g(t) is very close to N_r(t) for its workloads.
  const double g = YaoExpectedBlocks(18000, 3000, 16);
  EXPECT_GT(g, 15.9);
  EXPECT_LT(g, 16.0);
}

TEST(Yao, MonotoneInSelection) {
  double prev = 0.0;
  for (int k = 1; k <= 200; k += 7) {
    const double g = YaoExpectedBlocks(18000, 3000, k);
    EXPECT_GT(g, prev);
    EXPECT_LE(g, 3000.0);
    prev = g;
  }
}

TEST(Yao, MeanIosPerRequestIsAboutRecordsPerRequest) {
  const double q = MeanIosPerRequest(18000, 3000, 8, 4);
  EXPECT_GT(q, 3.9);
  EXPECT_LE(q, 4.0);
}

// ----------------------------------------------------------- lock model ---

TEST(LockModel, SigmaIsOneWithoutDeadlocks) {
  EXPECT_DOUBLE_EQ(SigmaFraction(0.0, 32.0), 1.0);
}

TEST(LockModel, ExpectedLocksAtAbortUniformLimit) {
  // As Pb*Pd -> 0 the abort position is uniform on {0..N_lk-1}.
  EXPECT_NEAR(ExpectedLocksAtAbort(1e-12, 33.0), 16.0, 0.01);
}

TEST(LockModel, ExpectedLocksAtAbortDecreasesWithHazard) {
  const double low = ExpectedLocksAtAbort(0.001, 32.0);
  const double high = ExpectedLocksAtAbort(0.1, 32.0);
  EXPECT_GT(low, high);
  EXPECT_GE(high, 0.0);
}

TEST(LockModel, AverageLocksHeldHalfNlkWhenAlwaysExecuting) {
  // With no think time and no aborts, L_h = N_lk / 2 (uniform acquisition).
  EXPECT_NEAR(AverageLocksHeld(32.0, 1.0, 0.0, 100.0, 0.0), 16.0, 1e-9);
}

TEST(LockModel, ThinkTimeDilutesLocksHeld) {
  const double no_think = AverageLocksHeld(32.0, 1.0, 0.0, 100.0, 0.0);
  const double with_think = AverageLocksHeld(32.0, 1.0, 0.0, 100.0, 100.0);
  EXPECT_NEAR(with_think, no_think / 2.0, 1e-9);
}

TEST(LockModel, BlockingRatioNearOneThird) {
  // BR = (2 N + 1) / (6 N) -> 1/3; the paper measured 0.23..0.41.
  EXPECT_NEAR(BlockingRatio(16.0), 0.34375, 1e-9);
  EXPECT_NEAR(BlockingRatio(1000.0), 1.0 / 3.0, 1e-3);
}

SiteLockInputs TwoTypeSite() {
  SiteLockInputs in;
  in.num_granules = 1000.0;
  in.population[Index(TxnType::kLRO)] = 4;
  in.locks_held[Index(TxnType::kLRO)] = 8.0;
  in.lock_requests[Index(TxnType::kLRO)] = 16.0;
  in.block_prob_per_execution[Index(TxnType::kLRO)] = 0.2;
  in.population[Index(TxnType::kLU)] = 4;
  in.locks_held[Index(TxnType::kLU)] = 8.0;
  in.lock_requests[Index(TxnType::kLU)] = 16.0;
  in.block_prob_per_execution[Index(TxnType::kLU)] = 0.3;
  return in;
}

TEST(LockModel, ReadersBlockedOnlyByWriters) {
  const SiteLockInputs in = TwoTypeSite();
  // LRO: only the 4 LU transactions' locks block it: 32 / 1000.
  EXPECT_NEAR(BlockingProbability(in, TxnType::kLRO), 0.032, 1e-12);
  // LU: everyone else's locks block it: (64 - 8) / 1000.
  EXPECT_NEAR(BlockingProbability(in, TxnType::kLU), 0.056, 1e-12);
}

TEST(LockModel, BlockerDistributionSumsToOne) {
  const SiteLockInputs in = TwoTypeSite();
  for (TxnType t : {TxnType::kLRO, TxnType::kLU}) {
    double sum = 0.0;
    for (TxnType s : kAllTxnTypes) sum += BlockerTypeProbability(in, t, s);
    EXPECT_NEAR(sum, 1.0, 1e-12) << Name(t);
  }
  // A reader is never blamed on another reader.
  EXPECT_DOUBLE_EQ(BlockerTypeProbability(in, TxnType::kLRO, TxnType::kLRO),
                   0.0);
}

TEST(LockModel, DeadlockNeedsMutualConflict) {
  SiteLockInputs in = TwoTypeSite();
  // Remove the updates: readers alone can never deadlock.
  in.population[Index(TxnType::kLU)] = 0;
  EXPECT_DOUBLE_EQ(DeadlockVictimProbability(in, TxnType::kLRO), 0.0);
  // With updates present, both types have positive victim probability.
  const SiteLockInputs full = TwoTypeSite();
  EXPECT_GT(DeadlockVictimProbability(full, TxnType::kLRO), 0.0);
  EXPECT_GT(DeadlockVictimProbability(full, TxnType::kLU), 0.0);
}

TEST(LockModel, LockWaitDelayWeighsBlockerTimes) {
  const SiteLockInputs in = TwoTypeSite();
  std::array<double, kNumTxnTypes> rlt{};
  rlt[Index(TxnType::kLRO)] = 100.0;
  rlt[Index(TxnType::kLU)] = 300.0;
  // LRO can only wait on LU.
  EXPECT_NEAR(LockWaitDelay(in, TxnType::kLRO, rlt), 300.0, 1e-12);
  // LU waits on a 32/56 LRO : 24/56 LU mixture (self locks excluded from
  // the LU mass).
  EXPECT_NEAR(LockWaitDelay(in, TxnType::kLU, rlt),
              (32.0 * 100.0 + 24.0 * 300.0) / 56.0, 1e-9);
}

// ---------------------------------------------------------------- solver ---

TEST(Solver, RejectsEmptyInput) {
  CaratModel model(ModelInput{});
  const ModelSolution sol = model.Solve();
  EXPECT_FALSE(sol.ok);
  EXPECT_FALSE(sol.error.empty());
}

TEST(Solver, Mb4ConvergesWithSaneOutputs) {
  const workload::WorkloadSpec wl = workload::MakeMB4(8);
  CaratModel model(wl.ToModelInput());
  const ModelSolution sol = model.Solve();
  ASSERT_TRUE(sol.ok) << sol.error;
  EXPECT_TRUE(sol.converged);
  ASSERT_EQ(sol.sites.size(), 2u);
  for (const SiteSolution& site : sol.sites) {
    EXPECT_GT(site.cpu_utilization, 0.0);
    EXPECT_LE(site.cpu_utilization, 1.0 + 1e-9);
    EXPECT_GT(site.db_disk_utilization, 0.0);
    EXPECT_LE(site.db_disk_utilization, 1.0 + 1e-9);
    EXPECT_GT(site.txn_per_s, 0.0);
    EXPECT_GT(site.records_per_s, 0.0);
    EXPECT_GT(site.dio_per_s, 0.0);
    for (TxnType t : kAllTxnTypes) {
      const ClassSolution& c = site.Class(t);
      ASSERT_TRUE(c.present) << Name(t);
      EXPECT_GT(c.throughput_per_s, 0.0) << Name(t);
      EXPECT_GE(c.pa, 0.0);
      EXPECT_LT(c.pa, 1.0);
      EXPECT_GE(c.ns, 1.0);
    }
  }
  // Node A has the faster disk, so it should out-produce Node B.
  EXPECT_GT(sol.sites[0].txn_per_s, sol.sites[1].txn_per_s);
}

TEST(Solver, DistributedThroughputSymmetricAcrossTwoEqualNodes) {
  // DRO/DU commit once per coordinator regardless of node speed asymmetry in
  // Table 5 they are near-equal; with symmetric costs they must match.
  workload::WorkloadSpec wl = workload::MakeMB4(8);
  wl.block_io_ms = {30.0, 30.0};
  CaratModel model(wl.ToModelInput());
  const ModelSolution sol = model.Solve();
  ASSERT_TRUE(sol.ok) << sol.error;
  const double a = sol.sites[0].Class(TxnType::kDROC).throughput_per_s;
  const double b = sol.sites[1].Class(TxnType::kDROC).throughput_per_s;
  EXPECT_TRUE(util::ApproxRelAbs(a, b, 0.01, 1e-6)) << a << " vs " << b;
}

TEST(Solver, ReadOnlyOutperformsUpdates) {
  const workload::WorkloadSpec wl = workload::MakeMB4(8);
  CaratModel model(wl.ToModelInput());
  const ModelSolution sol = model.Solve();
  ASSERT_TRUE(sol.ok);
  for (const SiteSolution& site : sol.sites) {
    EXPECT_GT(site.Class(TxnType::kLRO).throughput_per_s,
              site.Class(TxnType::kLU).throughput_per_s);
    EXPECT_GT(site.Class(TxnType::kDROC).throughput_per_s,
              site.Class(TxnType::kDUC).throughput_per_s);
  }
}

TEST(Solver, DeadlockAbortsGrowWithTransactionSize) {
  double prev_pa = -1.0;
  for (int n : {4, 8, 12, 16, 20}) {
    const workload::WorkloadSpec wl = workload::MakeLB8(n);
    CaratModel model(wl.ToModelInput());
    const ModelSolution sol = model.Solve();
    ASSERT_TRUE(sol.ok) << sol.error;
    const double pa = sol.sites[1].Class(TxnType::kLU).pa;
    EXPECT_GT(pa, prev_pa) << "n=" << n;
    prev_pa = pa;
  }
  EXPECT_GT(prev_pa, 0.0);
}

TEST(Solver, NormalizedThroughputEventuallyDeclines) {
  // The paper's headline shape: records/s falls beyond n ~ 8 because of
  // growing data contention and rollback.
  const workload::WorkloadSpec peak = workload::MakeLB8(8);
  const workload::WorkloadSpec big = workload::MakeLB8(20);
  const ModelSolution sol_peak = CaratModel(peak.ToModelInput()).Solve();
  const ModelSolution sol_big = CaratModel(big.ToModelInput()).Solve();
  ASSERT_TRUE(sol_peak.ok);
  ASSERT_TRUE(sol_big.ok);
  EXPECT_GT(sol_peak.sites[1].records_per_s, sol_big.sites[1].records_per_s);
}

TEST(Solver, LocalTypesNeverWaitRemotely) {
  const workload::WorkloadSpec wl = workload::MakeMB8(8);
  const ModelSolution sol = CaratModel(wl.ToModelInput()).Solve();
  ASSERT_TRUE(sol.ok);
  for (const SiteSolution& site : sol.sites) {
    EXPECT_DOUBLE_EQ(site.Class(TxnType::kLRO).r_rw_ms, 0.0);
    EXPECT_DOUBLE_EQ(site.Class(TxnType::kLU).r_rw_ms, 0.0);
    EXPECT_GT(site.Class(TxnType::kDROC).r_rw_ms, 0.0);
    EXPECT_GT(site.Class(TxnType::kDROS).r_rw_ms, 0.0);
  }
}

TEST(Solver, SeparateLogDiskImprovesThroughput) {
  workload::WorkloadSpec shared = workload::MakeLB8(8);
  workload::WorkloadSpec split = shared;
  split.separate_log_disk = true;
  const ModelSolution s1 = CaratModel(shared.ToModelInput()).Solve();
  const ModelSolution s2 = CaratModel(split.ToModelInput()).Solve();
  ASSERT_TRUE(s1.ok);
  ASSERT_TRUE(s2.ok);
  EXPECT_GE(s2.TotalTxnPerSec(), s1.TotalTxnPerSec());
  EXPECT_GT(s2.sites[0].log_disk_utilization, 0.0);
  EXPECT_DOUBLE_EQ(s1.sites[0].log_disk_utilization, 0.0);
}

TEST(Solver, SchweitzerOptionProducesSimilarResults) {
  const workload::WorkloadSpec wl = workload::MakeMB8(8);
  SolverOptions exact_opts;
  SolverOptions approx_opts;
  approx_opts.use_exact_mva = false;
  const ModelSolution exact = CaratModel(wl.ToModelInput()).Solve(exact_opts);
  const ModelSolution approx = CaratModel(wl.ToModelInput()).Solve(approx_opts);
  ASSERT_TRUE(exact.ok);
  ASSERT_TRUE(approx.ok);
  EXPECT_TRUE(util::ApproxRel(approx.TotalTxnPerSec(),
                              exact.TotalTxnPerSec(), 0.15))
      << approx.TotalTxnPerSec() << " vs " << exact.TotalTxnPerSec();
}

TEST(Solver, EthernetModelSuppliesNegligibleAlphaAtTenMbps) {
  const workload::WorkloadSpec wl = workload::MakeMB8(8);
  SolverOptions opts;
  opts.ethernet = qn::EthernetParams{};  // the paper's 10 Mb/s Ethernet
  const ModelSolution sol = CaratModel(wl.ToModelInput()).Solve(opts);
  ASSERT_TRUE(sol.ok) << sol.error;
  EXPECT_TRUE(sol.converged);
  // Transmit time of a 1000-byte message is 0.8 ms; with CARAT's tiny
  // message rate alpha must sit just above it - justifying the paper's
  // decision to neglect it.
  EXPECT_GT(sol.comm_delay_ms, 0.5);
  EXPECT_LT(sol.comm_delay_ms, 2.0);
  const ModelSolution base = CaratModel(wl.ToModelInput()).Solve();
  EXPECT_TRUE(util::ApproxRel(sol.TotalTxnPerSec(),
                              base.TotalTxnPerSec(), 0.02))
      << sol.TotalTxnPerSec() << " vs " << base.TotalTxnPerSec();
}

TEST(Solver, SlowNetworkHurtsDistributedTypesOnly) {
  const workload::WorkloadSpec wl = workload::MakeMB8(8);
  SolverOptions slow;
  slow.ethernet = qn::EthernetParams{};
  slow.ethernet->bandwidth_bits_per_ms = 56.0;  // 56 kb/s link
  const ModelSolution s = CaratModel(wl.ToModelInput()).Solve(slow);
  const ModelSolution fast = CaratModel(wl.ToModelInput()).Solve();
  ASSERT_TRUE(s.ok);
  ASSERT_TRUE(fast.ok);
  EXPECT_GT(s.comm_delay_ms, 100.0);
  // Distributed coordinators suffer (the workload is disk-bound, so even
  // ~300 ms per hop only shaves ~10% off their 20+ second responses);
  // locals barely notice, and the remote-wait delay itself balloons.
  EXPECT_LT(s.sites[0].Class(TxnType::kDUC).throughput_per_s,
            0.95 * fast.sites[0].Class(TxnType::kDUC).throughput_per_s);
  EXPECT_GT(s.sites[0].Class(TxnType::kLRO).throughput_per_s,
            0.9 * fast.sites[0].Class(TxnType::kLRO).throughput_per_s);
  // Each remote request now pays a ~300 ms round trip on top of the slave
  // service time (second-order feedback shifts the totals slightly).
  EXPECT_GT(s.sites[0].Class(TxnType::kDUC).r_rw_ms,
            fast.sites[0].Class(TxnType::kDUC).r_rw_ms + 300.0);
}

// Direct checks of the service-demand assembly (Eqs. 5-10).
TEST(Demands, NoContentionLocalReadOnly) {
  const workload::WorkloadSpec wl = workload::MakeLB8(4);
  const ModelInput input = wl.ToModelInput();
  const SiteParams& site = input.sites[0];
  const ClassParams& c = site.Class(TxnType::kLRO);

  TransitionInputs in;
  in.local_requests = 4;
  in.io_per_request = 4.0;
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(BuildLocalOrCoordinatorMatrix(in), &v));

  const ClassDemands d = ComputeDemands(site, TxnType::kLRO, v, /*ns=*/1.0,
                                        /*sigma=*/1.0, /*nlk=*/16.0,
                                        PhaseDelays{});
  // Disk: 16 reads at 28 ms + 1 commit force-write.
  EXPECT_NEAR(d.db_disk_ms, 16 * 28.0 + 28.0, 1e-9);
  EXPECT_DOUBLE_EQ(d.log_disk_ms, 0.0);
  // CPU: INIT + 5 U + 9 TM + 20 DM + 16 LR + 16 DMIO + TC + unlock.
  const double expected_cpu = c.init_cpu_ms + 5 * c.u_cpu_ms +
                              9 * c.tm_cpu_ms + 20 * c.dm_cpu_ms +
                              16 * c.lr_cpu_ms + 16 * c.dmio_cpu_ms +
                              c.tc_cpu_ms + 16 * c.unlock_cpu_per_lock_ms;
  EXPECT_NEAR(d.cpu_ms, expected_cpu, 1e-9);
  // No waits, no retries, no think.
  EXPECT_DOUBLE_EQ(d.lw_ms, 0.0);
  EXPECT_DOUBLE_EQ(d.rw_ms, 0.0);
  EXPECT_DOUBLE_EQ(d.ut_ms, 0.0);
}

TEST(Demands, RetriesScaleDemandsByNs) {
  const workload::WorkloadSpec wl = workload::MakeLB8(4);
  const ModelInput input = wl.ToModelInput();
  const SiteParams& site = input.sites[0];
  TransitionInputs in;
  in.local_requests = 4;
  in.io_per_request = 4.0;
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(BuildLocalOrCoordinatorMatrix(in), &v));
  const ClassDemands once = ComputeDemands(site, TxnType::kLU, v, 1.0, 1.0,
                                           16.0, PhaseDelays{});
  const ClassDemands twice = ComputeDemands(site, TxnType::kLU, v, 2.0, 1.0,
                                            16.0, PhaseDelays{});
  EXPECT_NEAR(twice.cpu_ms, 2.0 * once.cpu_ms, 1e-9);
  EXPECT_NEAR(twice.db_disk_ms, 2.0 * once.db_disk_ms, 1e-9);
}

TEST(Demands, SeparateLogDiskSplitsCommitIo) {
  workload::WorkloadSpec wl = workload::MakeLB8(4);
  wl.separate_log_disk = true;
  const ModelInput input = wl.ToModelInput();
  const SiteParams& site = input.sites[0];
  TransitionInputs in;
  in.local_requests = 4;
  in.io_per_request = 4.0;
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(BuildLocalOrCoordinatorMatrix(in), &v));
  const ClassDemands d = ComputeDemands(site, TxnType::kLRO, v, 1.0, 1.0,
                                        16.0, PhaseDelays{});
  EXPECT_NEAR(d.db_disk_ms, 16 * 28.0, 1e-9);   // data reads stay
  EXPECT_NEAR(d.log_disk_ms, 28.0, 1e-9);       // commit force moves
}

TEST(Demands, LockWaitDelayEntersLwDemand) {
  const workload::WorkloadSpec wl = workload::MakeLB8(4);
  const ModelInput input = wl.ToModelInput();
  TransitionInputs in;
  in.local_requests = 4;
  in.io_per_request = 4.0;
  in.pb = 0.1;
  VisitCounts v;
  ASSERT_TRUE(SolveVisitCounts(BuildLocalOrCoordinatorMatrix(in), &v));
  PhaseDelays delays;
  delays.r_lw_ms = 100.0;
  const ClassDemands d = ComputeDemands(input.sites[0], TxnType::kLU, v, 1.0,
                                        1.0, 16.0, delays);
  // V_LW = N_lk * Pb = 1.6 expected blocked requests per execution.
  EXPECT_NEAR(d.lw_ms, 1.6 * 100.0, 1e-6);
}

// Parameterized sweep: the full workload grid must converge and satisfy
// utilization bounds.
struct GridCase {
  const char* workload;
  int n;
};

class SolverGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SolverGridTest, ConvergesAcrossWorkloadGrid) {
  const int which = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  workload::WorkloadSpec wl;
  switch (which) {
    case 0: wl = workload::MakeLB8(n); break;
    case 1: wl = workload::MakeMB4(n); break;
    case 2: wl = workload::MakeMB8(n); break;
    default: wl = workload::MakeUB6(n); break;
  }
  const ModelSolution sol = CaratModel(wl.ToModelInput()).Solve();
  ASSERT_TRUE(sol.ok) << wl.name << " n=" << n << ": " << sol.error;
  EXPECT_TRUE(sol.converged) << wl.name << " n=" << n;
  for (const SiteSolution& site : sol.sites) {
    EXPECT_LE(site.cpu_utilization, 1.0 + 1e-9);
    EXPECT_LE(site.db_disk_utilization, 1.0 + 1e-9);
    EXPECT_GT(site.txn_per_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadGrid, SolverGridTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(4, 8, 12, 16, 20)));

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectBitIdentical(const ModelSolution& a, const ModelSolution& b) {
  ASSERT_EQ(a.ok, b.ok);
  ASSERT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  EXPECT_TRUE(SameBits(a.comm_delay_ms, b.comm_delay_ms));
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].name, b.sites[i].name);
    EXPECT_TRUE(SameBits(a.sites[i].txn_per_s, b.sites[i].txn_per_s));
    EXPECT_TRUE(SameBits(a.sites[i].records_per_s, b.sites[i].records_per_s));
    EXPECT_TRUE(
        SameBits(a.sites[i].cpu_utilization, b.sites[i].cpu_utilization));
    EXPECT_TRUE(SameBits(a.sites[i].dio_per_s, b.sites[i].dio_per_s));
    for (TxnType t : kAllTxnTypes) {
      const ClassSolution& ca = a.sites[i].Class(t);
      const ClassSolution& cb = b.sites[i].Class(t);
      ASSERT_EQ(ca.present, cb.present);
      EXPECT_TRUE(SameBits(ca.throughput_per_s, cb.throughput_per_s));
      EXPECT_TRUE(SameBits(ca.response_ms, cb.response_ms));
      EXPECT_TRUE(SameBits(ca.pa, cb.pa));
      EXPECT_TRUE(SameBits(ca.r_lw_ms, cb.r_lw_ms));
      EXPECT_TRUE(SameBits(ca.r_rw_ms, cb.r_rw_ms));
      EXPECT_TRUE(SameBits(ca.r_cw_ms, cb.r_cw_ms));
    }
  }
}

TEST(SolverWarmStart, NullSeedIsBitIdenticalToPlainSolve) {
  const CaratModel model(workload::MakeMB4(8).ToModelInput());
  const ModelSolution plain = model.Solve();
  WarmStart warm_out;
  const ModelSolution cold = model.Solve({}, nullptr, &warm_out);
  ExpectBitIdentical(plain, cold);
  EXPECT_FALSE(cold.warm_started);
  ASSERT_EQ(warm_out.sites.size(), model.input().sites.size());
}

TEST(SolverWarmStart, SeededSolveConvergesToSameFixedPointInFewerIterations) {
  const CaratModel base(workload::MakeMB4(8).ToModelInput());
  WarmStart warm;
  const ModelSolution cold_base = base.Solve({}, nullptr, &warm);
  ASSERT_TRUE(cold_base.ok);

  // A nearby sweep point seeded from the neighbor's converged state.
  const CaratModel target(workload::MakeMB4(9).ToModelInput());
  const ModelSolution cold = target.Solve();
  const ModelSolution warmed = target.Solve({}, &warm);
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(warmed.ok);
  EXPECT_TRUE(warmed.warm_started);
  EXPECT_TRUE(warmed.converged);
  EXPECT_LT(warmed.iterations, cold.iterations);
  EXPECT_TRUE(util::ApproxRel(warmed.TotalTxnPerSec(),
                              cold.TotalTxnPerSec(), 1e-5))
      << warmed.TotalTxnPerSec() << " vs " << cold.TotalTxnPerSec();
}

TEST(SolverWarmStart, IncompatibleSeedSilentlyStartsCold) {
  WarmStart warm;
  const ModelSolution seed_sol =
      CaratModel(workload::MakeMB4(8).ToModelInput()).Solve({}, nullptr, &warm);
  ASSERT_TRUE(seed_sol.ok);
  // LB8 has a different chain-presence shape; the seed must not apply.
  const CaratModel other(workload::MakeLB8(8).ToModelInput());
  EXPECT_FALSE(warm.CompatibleWith(other.input()));
  const ModelSolution sol = other.Solve({}, &warm);
  ASSERT_TRUE(sol.ok);
  EXPECT_FALSE(sol.warm_started);
  ExpectBitIdentical(sol, other.Solve());
}

TEST(SolverArena, ReuseAcrossShapesStaysBitIdentical) {
  // One arena serving interleaved shapes: rebuilt on shape change, reused
  // otherwise — never changing any result bit.
  SolveArena arena;
  ModelSolution out;
  for (const int n : {4, 8}) {
    for (const char* family : {"mb4", "lb8", "mb4"}) {
      const ModelInput input = std::string(family) == "mb4"
                                   ? workload::MakeMB4(n).ToModelInput()
                                   : workload::MakeLB8(n).ToModelInput();
      const CaratModel model(input);
      model.SolveInto({}, &arena, nullptr, &out);
      ExpectBitIdentical(out, model.Solve());
    }
  }
}

TEST(SolverShapeKey, EncodesChainPresenceAndLayout) {
  const ModelInput mb4_a = workload::MakeMB4(4).ToModelInput();
  const ModelInput mb4_b = workload::MakeMB4(20).ToModelInput();
  EXPECT_EQ(SolveShapeKey(mb4_a), SolveShapeKey(mb4_b));  // same family
  const ModelInput lb8 = workload::MakeLB8(4).ToModelInput();
  EXPECT_NE(SolveShapeKey(mb4_a), SolveShapeKey(lb8));
  ModelInput log_disk = mb4_a;
  log_disk.sites[0].separate_log_disk = !log_disk.sites[0].separate_log_disk;
  EXPECT_NE(SolveShapeKey(mb4_a), SolveShapeKey(log_disk));
}

}  // namespace
}  // namespace carat::model
