#include <gtest/gtest.h>

#include "workload/spec.h"

namespace carat::workload {
namespace {

using model::TxnType;

TEST(Workloads, Lb8IsLocalOnlyEightUsersPerNode) {
  const WorkloadSpec wl = MakeLB8(8);
  ASSERT_EQ(wl.nodes.size(), 2u);
  for (const NodeMix& node : wl.nodes) {
    EXPECT_EQ(node.lro, 4);
    EXPECT_EQ(node.lu, 4);
    EXPECT_EQ(node.dro, 0);
    EXPECT_EQ(node.du, 0);
    EXPECT_EQ(node.total(), 8);
  }
}

TEST(Workloads, StandardMixesMatchThePaper) {
  EXPECT_EQ(MakeMB4(8).nodes[0].total(), 4);
  EXPECT_EQ(MakeMB8(8).nodes[0].total(), 8);
  EXPECT_EQ(MakeUB6(8).nodes[0].total(), 6);
  const WorkloadSpec ub6 = MakeUB6(8);
  EXPECT_EQ(ub6.nodes[0].lro, 2);
  EXPECT_EQ(ub6.nodes[0].lu, 2);
  EXPECT_EQ(ub6.nodes[0].dro, 1);
  EXPECT_EQ(ub6.nodes[0].du, 1);
}

TEST(Workloads, DistributedSplitIsHalfAndHalf) {
  for (const int n : {4, 5, 8, 20}) {
    const WorkloadSpec wl = MakeMB4(n);
    EXPECT_EQ(wl.distributed_local_requests() +
                  wl.distributed_remote_requests(),
              n);
    EXPECT_GE(wl.distributed_local_requests(),
              wl.distributed_remote_requests());
    EXPECT_LE(wl.distributed_local_requests() -
                  wl.distributed_remote_requests(),
              1);
  }
}

TEST(Workloads, ModelInputValidatesForAllStandardWorkloads) {
  for (const int n : {4, 8, 12, 16, 20}) {
    for (const WorkloadSpec& wl :
         {MakeLB8(n), MakeMB4(n), MakeMB8(n), MakeUB6(n)}) {
      std::string error;
      EXPECT_TRUE(wl.ToModelInput().Validate(&error))
          << wl.name << " n=" << n << ": " << error;
    }
  }
}

TEST(Workloads, Table2CostsAreApplied) {
  const model::ModelInput input = MakeMB4(8).ToModelInput();
  const model::SiteParams& a = input.sites[0];
  const model::SiteParams& b = input.sites[1];
  // Node A: RM05, 28 ms/block; Node B: RP06, 40 ms/block.
  EXPECT_DOUBLE_EQ(a.block_io_ms, 28.0);
  EXPECT_DOUBLE_EQ(b.block_io_ms, 40.0);
  // LRO: one read per access; LU: read + journal + write.
  EXPECT_DOUBLE_EQ(a.Class(TxnType::kLRO).dmio_disk_ms, 28.0);
  EXPECT_DOUBLE_EQ(a.Class(TxnType::kLU).dmio_disk_ms, 84.0);
  EXPECT_DOUBLE_EQ(b.Class(TxnType::kLRO).dmio_disk_ms, 40.0);
  EXPECT_DOUBLE_EQ(b.Class(TxnType::kLU).dmio_disk_ms, 120.0);
  // TM processing: 8 ms local, 12 ms distributed.
  EXPECT_DOUBLE_EQ(a.Class(TxnType::kLRO).tm_cpu_ms, 8.0);
  EXPECT_DOUBLE_EQ(a.Class(TxnType::kDROC).tm_cpu_ms, 12.0);
  EXPECT_DOUBLE_EQ(a.Class(TxnType::kDROS).tm_cpu_ms, 12.0);
  // User and lock-request processing are type-independent.
  EXPECT_DOUBLE_EQ(a.Class(TxnType::kLU).u_cpu_ms, 7.8);
  EXPECT_DOUBLE_EQ(a.Class(TxnType::kLU).lr_cpu_ms, 2.2);
}

TEST(Workloads, SlaveChainsMirrorRemoteCoordinators) {
  const model::ModelInput input = MakeMB8(8).ToModelInput();
  for (int i = 0; i < 2; ++i) {
    const model::SiteParams& site = input.sites[i];
    // Each node hosts slaves for the other node's 2 DRO + 2 DU users.
    EXPECT_EQ(site.Class(TxnType::kDROS).population, 2);
    EXPECT_EQ(site.Class(TxnType::kDUS).population, 2);
    // Slave local work = the coordinator's remote requests.
    EXPECT_EQ(site.Class(TxnType::kDROS).local_requests,
              input.sites[1 - i].Class(TxnType::kDROC).remote_requests);
    EXPECT_EQ(site.Class(TxnType::kDROS).remote_requests, 0);
  }
}

TEST(Workloads, LocalOnlyWorkloadHasNoSlaveChains) {
  const model::ModelInput input = MakeLB8(8).ToModelInput();
  for (const model::SiteParams& site : input.sites) {
    EXPECT_EQ(site.Class(TxnType::kDROS).population, 0);
    EXPECT_EQ(site.Class(TxnType::kDUS).population, 0);
    EXPECT_EQ(site.Class(TxnType::kDROC).population, 0);
  }
}

TEST(Workloads, ThreeNodeSplitSpreadsRemoteWork) {
  const WorkloadSpec wl = MakeMB4(8, /*num_nodes=*/3);
  const model::ModelInput input = wl.ToModelInput();
  ASSERT_EQ(input.sites.size(), 3u);
  std::string error;
  EXPECT_TRUE(input.Validate(&error)) << error;
  // Each node hosts slaves for the other two nodes' distributed users.
  EXPECT_EQ(input.sites[0].Class(TxnType::kDROS).population, 2);
  // Remote requests divide over two slave sites.
  const int r = wl.distributed_remote_requests();
  EXPECT_EQ(input.sites[0].Class(TxnType::kDROS).local_requests,
            std::max(r / 2, 1));
}

TEST(Workloads, DerivedPhaseCostsFollowTheRules) {
  const model::ModelInput input = MakeMB4(8).ToModelInput();
  const model::ClassParams& lro = input.sites[0].Class(TxnType::kLRO);
  const model::ClassParams& duc = input.sites[0].Class(TxnType::kDUC);
  const model::ClassParams& dus = input.sites[0].Class(TxnType::kDUS);
  EXPECT_DOUBLE_EQ(lro.init_cpu_ms, 2 * 8.0 + 5.4);
  EXPECT_DOUBLE_EQ(lro.tc_cpu_ms, 8.0);          // local: one TM visit
  EXPECT_DOUBLE_EQ(duc.tc_cpu_ms, 2 * 12.0);     // coordinator: two rounds
  EXPECT_DOUBLE_EQ(lro.tcio_force_writes, 1.0);
  EXPECT_DOUBLE_EQ(dus.tcio_force_writes, 2.0);  // prepare force + commit
  EXPECT_DOUBLE_EQ(lro.taio_ios_per_granule, 0.0);  // nothing to undo
  EXPECT_DOUBLE_EQ(duc.taio_ios_per_granule, 2.0);
}

TEST(Workloads, ExtensionKnobsPropagate) {
  WorkloadSpec wl = MakeLB8(8);
  wl.hot_data_fraction = 0.1;
  wl.hot_access_fraction = 0.8;
  wl.buffer_blocks = 500;
  wl.dm_pool_size = 3;
  wl.separate_log_disk = true;
  const model::ModelInput input = wl.ToModelInput();
  for (const model::SiteParams& site : input.sites) {
    EXPECT_DOUBLE_EQ(site.hot_data_fraction, 0.1);
    EXPECT_DOUBLE_EQ(site.hot_access_fraction, 0.8);
    EXPECT_EQ(site.buffer_blocks, 500);
    EXPECT_EQ(site.dm_pool_size, 3);
    EXPECT_TRUE(site.separate_log_disk);
  }
}

TEST(Workloads, ValidationCatchesBadInputs) {
  model::ModelInput input = MakeMB4(8).ToModelInput();
  input.sites[0].num_granules = 0;
  std::string error;
  EXPECT_FALSE(input.Validate(&error));

  input = MakeMB4(8).ToModelInput();
  input.comm_delay_ms = -1;
  EXPECT_FALSE(input.Validate(&error));

  input = MakeMB4(8).ToModelInput();
  // Slave population without any coordinator anywhere else.
  input.sites[0].Class(TxnType::kDROC).population = 0;
  input.sites[1].Class(TxnType::kDROC).population = 0;
  EXPECT_FALSE(input.Validate(&error));
}

}  // namespace
}  // namespace carat::workload
