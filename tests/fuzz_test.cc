// Tests for the metamorphic/differential fuzz subsystem (src/fuzz) plus the
// fuzz smoke tier: the whole binary carries the `fuzz` ctest label, so CI
// runs it with `ctest -L fuzz` (the 2000-scenario model smoke and a smaller
// testbed-backed smoke are the acceptance gate for solver changes).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/relations.h"
#include "fuzz/scenario.h"
#include "util/random.h"
#include "workload/spec.h"

namespace carat::fuzz {
namespace {

// ---------------------------------------------------------- serialization -

TEST(HexDouble, RoundTripsExactBits) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.5,
                          1.0 / 3.0,
                          3.141592653589793,
                          1e-300,
                          5e-324,  // smallest denormal
                          1.7976931348623157e308,
                          123456.789012345};
  for (const double v : cases) {
    const std::string text = FormatHexDouble(v);
    double back = std::numeric_limits<double>::quiet_NaN();
    ASSERT_TRUE(ParseHexDouble(text, &back)) << text;
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
        << text << " parsed to " << back;
  }
}

TEST(HexDouble, AcceptsPlainDecimalAndRejectsGarbage) {
  double v = 0;
  ASSERT_TRUE(ParseHexDouble("1.5", &v));
  EXPECT_EQ(v, 1.5);
  ASSERT_TRUE(ParseHexDouble("-2e3", &v));
  EXPECT_EQ(v, -2000.0);
  EXPECT_FALSE(ParseHexDouble("banana", &v));
  EXPECT_FALSE(ParseHexDouble("", &v));
  EXPECT_FALSE(ParseHexDouble("1.5x", &v));
}

TEST(Scenario, SerializeParseIsByteStableAndSolutionExact) {
  util::Rng rng(2026);
  for (int i = 0; i < 50; ++i) {
    const Scenario s = GenerateScenario(&rng);
    const std::string text = Serialize(s);
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(Parse(text, &parsed, &error)) << error << "\n" << text;
    // Canonical form: re-serializing reproduces the text byte for byte.
    EXPECT_EQ(Serialize(parsed), text);
    EXPECT_EQ(parsed.name, s.name);
    EXPECT_EQ(parsed.testbed_seed, s.testbed_seed);
    // And the parsed scenario solves bit-identically.
    const auto a = model::CaratModel(s.input).Solve();
    const auto b = model::CaratModel(parsed.input).Solve();
    ASSERT_EQ(a.ok, b.ok);
    if (a.ok) {
      EXPECT_EQ(ModelSolutionFingerprint(a), ModelSolutionFingerprint(b));
    }
  }
}

TEST(Scenario, ParseReportsLineNumbers) {
  Scenario s;
  std::string error;
  EXPECT_FALSE(Parse("carat-scenario v1\nsites 1\nwat\nend\n", &s, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_FALSE(Parse("not-a-scenario\n", &s, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(Scenario, FileRoundTripIgnoresCommentHeader) {
  util::Rng rng(7);
  const Scenario s = GenerateScenario(&rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fuzz_test_roundtrip.scn")
          .string();
  ASSERT_TRUE(WriteScenarioFile(path, s, "a finding\nsecond header line"));
  Scenario back;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(path, &back, &error)) << error;
  EXPECT_EQ(Serialize(back), Serialize(s));
  std::filesystem::remove(path);
}

// -------------------------------------------------------------- generator -

TEST(Generator, SameSeedSameScenario) {
  util::Rng a(31), b(31), c(32);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(Serialize(GenerateScenario(&a)), Serialize(GenerateScenario(&b)));
  }
  EXPECT_NE(Serialize(GenerateScenario(&a)), Serialize(GenerateScenario(&c)));
}

TEST(Generator, EveryScenarioValidatesWithAUser) {
  util::Rng rng(1);
  int multi_site = 0, read_only = 0, with_think = 0;
  for (int i = 0; i < 5000; ++i) {
    const Scenario s = GenerateScenario(&rng);
    std::string why;
    ASSERT_TRUE(s.input.Validate(&why)) << "scenario " << i << ": " << why;
    bool has_user = false;
    bool all_read_only = true;
    for (const auto& site : s.input.sites) {
      if (site.think_time_ms > 0) ++with_think;
      for (model::TxnType t : model::kAllTxnTypes) {
        const auto& c = site.Class(t);
        if (c.population > 0 && t != model::TxnType::kDROS &&
            t != model::TxnType::kDUS) {
          has_user = true;
        }
        if (c.population > 0 && model::IsUpdate(t)) all_read_only = false;
      }
    }
    EXPECT_TRUE(has_user) << "scenario " << i;
    multi_site += s.input.sites.size() > 1;
    read_only += all_read_only;
  }
  // The distribution must keep feeding every oracle's precondition.
  EXPECT_GT(multi_site, 1000);  // permutation / shard / distributed rules
  EXPECT_GT(read_only, 300);    // granule-invariance pool
  EXPECT_GT(with_think, 1000);  // think-time code paths
}

TEST(Generator, RespectsOptionBounds) {
  GeneratorOptions opts;
  opts.min_sites = 2;
  opts.max_sites = 2;
  opts.allow_update = false;
  opts.max_population = 1;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Scenario s = GenerateScenario(&rng, opts);
    EXPECT_EQ(s.input.sites.size(), 2u);
    for (const auto& site : s.input.sites) {
      for (model::TxnType t : model::kAllTxnTypes) {
        const auto& c = site.Class(t);
        if (c.population > 0) EXPECT_TRUE(model::IsReadOnly(t));
        if (t != model::TxnType::kDROS && t != model::TxnType::kDUS) {
          EXPECT_LE(c.population, 1);
        }
      }
    }
  }
}

// -------------------------------------------------------------- relations -

TEST(Relations, RuleNamesAreUniqueAndStable) {
  std::vector<std::string> names;
  for (Rule r : kAllRules) names.emplace_back(RuleName(r));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumRules));
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
  // The findings-file format and the --rule flag depend on these strings.
  EXPECT_STREQ(RuleName(Rule::kBatchLaneIdentity), "batch-lane-identity");
  EXPECT_STREQ(RuleName(Rule::kModelVsTestbed), "model-vs-testbed");
  EXPECT_TRUE(RuleNeedsTestbed(Rule::kShardIdentity));
  EXPECT_TRUE(RuleNeedsTestbed(Rule::kModelVsTestbed));
  EXPECT_FALSE(RuleNeedsTestbed(Rule::kSitePermutation));
}

// Every fast rule holds on the paper's standard workloads — the anchor
// scenarios the whole validation suite is built around.
TEST(Relations, HoldOnPaperWorkloads) {
  const workload::WorkloadSpec specs[] = {
      workload::MakeLB8(8), workload::MakeMB4(8), workload::MakeMB8(8),
      workload::MakeUB6(8)};
  CheckOptions opts;
  for (const auto& wl : specs) {
    Scenario s;
    s.name = wl.name;
    s.input = wl.ToModelInput();
    for (Rule r : kAllRules) {
      if (RuleNeedsTestbed(r)) continue;
      std::string detail;
      EXPECT_TRUE(CheckRule(s, r, opts, &detail))
          << wl.name << " violates " << RuleName(r) << ": " << detail;
    }
  }
}

TEST(Relations, GranuleInvarianceSkipsUpdateWorkloads) {
  Scenario s;
  s.input = workload::MakeMB4(8).ToModelInput();  // has update classes
  CheckOptions opts;
  bool applicable = true;
  EXPECT_TRUE(CheckRule(s, Rule::kGranuleInvariance, opts, nullptr,
                        &applicable));
  EXPECT_FALSE(applicable);
}

TEST(Relations, CheckScenarioCountsPerRule) {
  util::Rng rng(11);
  const Scenario s = GenerateScenario(&rng);
  CheckOptions opts;
  CheckStats stats;
  const auto violations = CheckScenario(s, opts, &stats);
  EXPECT_TRUE(violations.empty());
  // Testbed rules must not have run.
  EXPECT_EQ(stats.per_rule_checked[static_cast<int>(Rule::kShardIdentity)], 0);
  EXPECT_EQ(stats.per_rule_checked[static_cast<int>(Rule::kModelVsTestbed)], 0);
  // The always-applicable model rules must have.
  EXPECT_EQ(stats.per_rule_checked[static_cast<int>(Rule::kQnDemandScaling)],
            1);
  EXPECT_EQ(stats.per_rule_checked[static_cast<int>(Rule::kBatchLaneIdentity)],
            1);
  long long sum = 0;
  for (long long c : stats.per_rule_checked) sum += c;
  EXPECT_EQ(sum, stats.checked);
}

// A deliberately impossible tolerance turns the exact-vs-Schweitzer
// differential into a reliable violation source for minimizer testing.
CheckOptions ImpossibleSchweitzerTolerance() {
  CheckOptions opts;
  opts.schweitzer_rel = 0.0;
  return opts;
}

TEST(Minimize, ShrinksWhilePreservingTheViolation) {
  const CheckOptions opts = ImpossibleSchweitzerTolerance();
  util::Rng rng(17);
  Scenario victim;
  bool found = false;
  for (int i = 0; i < 50 && !found; ++i) {
    victim = GenerateScenario(&rng);
    std::string detail;
    bool applicable = false;
    found = !CheckRule(victim, Rule::kExactVsSchweitzer, opts, &detail,
                       &applicable) &&
            applicable;
  }
  ASSERT_TRUE(found) << "no scenario tripped the synthetic violation";

  int evals = 0;
  const Scenario shrunk = MinimizeScenario(victim, Rule::kExactVsSchweitzer,
                                           opts, MinimizeOptions{}, &evals);
  EXPECT_GT(evals, 0);
  // Still violating, still valid, no bigger than the original.
  EXPECT_FALSE(CheckRule(shrunk, Rule::kExactVsSchweitzer, opts));
  std::string why;
  EXPECT_TRUE(shrunk.input.Validate(&why)) << why;
  EXPECT_LE(Serialize(shrunk).size(), Serialize(victim).size());
  EXPECT_LE(shrunk.input.sites.size(), victim.input.sites.size());
}

TEST(Fuzzer, RecordsMinimizedFindingsToDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "fuzz_findings";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FuzzOptions opts;
  opts.seed = 17;
  opts.num_scenarios = 12;
  opts.check = ImpossibleSchweitzerTolerance();
  opts.findings_dir = dir.string();
  const FuzzReport report = RunFuzz(opts);
  ASSERT_FALSE(report.violations.empty());
  ASSERT_EQ(report.finding_files.size(), report.violations.size());
  // Each finding replays to the same violation from its file alone.
  for (std::size_t i = 0; i < report.finding_files.size(); ++i) {
    Scenario back;
    std::string error;
    ASSERT_TRUE(LoadScenarioFile(report.finding_files[i], &back, &error))
        << error;
    EXPECT_FALSE(CheckRule(back, report.violations[i].rule, opts.check));
  }
  std::filesystem::remove_all(dir);
}

TEST(Fuzzer, TimeBudgetStopsEarly) {
  FuzzOptions opts;
  opts.seed = 3;
  opts.num_scenarios = 1000000;
  opts.time_budget_s = 0.5;
  const FuzzReport report = RunFuzz(opts);
  EXPECT_GT(report.scenarios, 0);
  EXPECT_LT(report.scenarios, opts.num_scenarios);
}

// ------------------------------------------------------------ fuzz smokes -

// The acceptance smoke: 2000 scenarios through every model-level rule (the
// testbed rules get their own, smaller smoke below). Any violation prints
// the serialized repro so CI logs are self-contained.
TEST(FuzzSmoke, TwoThousandScenariosModelRulesClean) {
  FuzzOptions opts;
  opts.seed = 20260808;
  opts.num_scenarios = 2000;
  opts.minimize = true;
  const FuzzReport report = RunFuzz(opts);
  EXPECT_EQ(report.scenarios, 2000);
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << RuleName(v.rule) << ": " << v.detail << "\n"
                  << Serialize(v.scenario);
  }
  // All five always-applicable rule families actually exercised, a lot.
  EXPECT_GT(report.stats.per_rule_checked[static_cast<int>(
                Rule::kQnDemandScaling)],
            1900);
  EXPECT_GT(report.stats.per_rule_checked[static_cast<int>(
                Rule::kBatchLaneIdentity)],
            1900);
  EXPECT_GT(
      report.stats.per_rule_checked[static_cast<int>(Rule::kServeIdentity)],
      1900);
  EXPECT_GT(
      report.stats.per_rule_checked[static_cast<int>(Rule::kSitePermutation)],
      900);
  EXPECT_GT(
      report.stats.per_rule_checked[static_cast<int>(Rule::kChainSplit)], 900);
}

TEST(FuzzSmoke, TestbedRulesClean) {
  FuzzOptions opts;
  opts.seed = 808;
  opts.num_scenarios = 24;
  opts.testbed_every = 3;
  const FuzzReport report = RunFuzz(opts);
  EXPECT_EQ(report.testbed_scenarios, 8);
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << RuleName(v.rule) << ": " << v.detail << "\n"
                  << Serialize(v.scenario);
  }
  EXPECT_GT(
      report.stats.per_rule_checked[static_cast<int>(Rule::kModelVsTestbed)],
      0);
}

// ----------------------------------------------------------------- corpus -

// tests/corpus/ holds curated seed scenarios (the paper's standard
// workloads plus generated regression anchors); every one must replay clean
// with the testbed rules on.
TEST(Corpus, ReplaysClean) {
  const std::filesystem::path dir = CARAT_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  CheckOptions opts;
  opts.with_testbed = true;
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scn") continue;
    ++files;
    Scenario s;
    std::string error;
    ASSERT_TRUE(LoadScenarioFile(entry.path().string(), &s, &error)) << error;
    for (const Violation& v : ReplayScenario(s, opts)) {
      ADD_FAILURE() << entry.path().filename() << " violates "
                    << RuleName(v.rule) << ": " << v.detail;
    }
  }
  EXPECT_GE(files, 8) << "seed corpus went missing from " << dir;
}

}  // namespace
}  // namespace carat::fuzz
