// Hierarchical site-class solving (DESIGN.md §14).
//
// The contract under test: the solver detects (or accepts) a partition of
// the sites into classes of byte-identical replicas, couples the sites
// through class-aggregated sums, and — with collapse_site_classes on — runs
// the fixed point over one representative per class. Collapsed and flat
// solves of the same input are bit-identical, explicit partitions behave
// like detected ones, the shape key separates different partitions, and the
// coupling storage is O(classes), not O(sites²) — pinned by counting heap
// allocations around cold solves at 512 vs 1024 sites.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "carat/testbed.h"
#include "fuzz/generator.h"
#include "fuzz/scenario.h"
#include "model/solver.h"
#include "util/approx.h"
#include "util/random.h"
#include "workload/spec.h"

// ---- Global allocation counters --------------------------------------------
// Same hook as bench/perf_solver.cc: every operator-new in the process bumps
// the counters; tests read deltas around solve calls. The solver is
// deterministic, so the deltas are too.

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace carat::model {
namespace {

using carat::fuzz::ModelSolutionFingerprint;

ModelInput NodesInput(workload::WorkloadSpec (*make)(int, int), int requests,
                      int num_nodes) {
  return make(requests, num_nodes).ToModelInput();
}

ModelSolution SolveWith(const ModelInput& input, bool collapse,
                        bool exact = true,
                        const SiteClassSpec* spec = nullptr) {
  SolverOptions opts;
  opts.collapse_site_classes = collapse;
  opts.use_exact_mva = exact;
  opts.site_classes = spec;
  return CaratModel(input).Solve(opts);
}

// ------------------------------------------------- flat/hier bit-identity --

TEST(HierSolver, CollapsedBitIdenticalToFlatOnPaperWorkloads) {
  struct Case {
    workload::WorkloadSpec (*make)(int, int);
    int requests;
    int nodes;
    bool exact;
  };
  // Small node counts run exact MVA; large ones Schweitzer (their slave
  // populations are in the thousands). Every input here alternates two
  // block-I/O speeds, so the detected partition has exactly 2 classes.
  const Case cases[] = {
      {workload::MakeMB4, 4, 8, true},   {workload::MakeLB8, 8, 12, true},
      {workload::MakeUB6, 6, 12, true},  {workload::MakeMB4, 4, 64, false},
      {workload::MakeMB8, 8, 128, false}, {workload::MakeUB6, 6, 256, false},
  };
  for (const Case& c : cases) {
    const ModelInput input = NodesInput(c.make, c.requests, c.nodes);
    const ModelSolution flat = SolveWith(input, false, c.exact);
    const ModelSolution hier = SolveWith(input, true, c.exact);
    ASSERT_TRUE(flat.ok) << flat.error;
    ASSERT_TRUE(hier.ok) << hier.error;
    EXPECT_TRUE(flat.converged);
    EXPECT_EQ(flat.iterations, hier.iterations) << c.nodes << " nodes";
    EXPECT_EQ(ModelSolutionFingerprint(flat), ModelSolutionFingerprint(hier))
        << c.nodes << " nodes, exact=" << c.exact;
  }
}

TEST(HierSolver, CollapsedBitIdenticalToFlatOnGeneratedClassScenarios) {
  fuzz::GeneratorOptions gopts;
  gopts.min_sites = 24;
  gopts.max_sites = 40;
  gopts.site_classes = 6;
  util::Rng rng(20260808);
  for (int i = 0; i < 20; ++i) {
    const fuzz::Scenario s = fuzz::GenerateScenario(&rng, gopts);
    ASSERT_TRUE(s.input.Validate());
    const ModelSolution flat = SolveWith(s.input, false);
    const ModelSolution hier = SolveWith(s.input, true);
    ASSERT_TRUE(flat.ok) << flat.error;
    ASSERT_TRUE(hier.ok) << hier.error;
    EXPECT_EQ(ModelSolutionFingerprint(flat), ModelSolutionFingerprint(hier))
        << "seed draw " << i;
  }
}

// ----------------------------------------------------- explicit partitions --

TEST(HierSolver, ExplicitSpecMatchesDetectedPartition) {
  const ModelInput input = NodesInput(workload::MakeMB4, 4, 8);
  const ModelSolution detected = SolveWith(input, true);
  ASSERT_TRUE(detected.ok) << detected.error;

  // The true partition, spelled out: even sites run 28 ms disks, odd 40 ms.
  SiteClassSpec spec;
  for (std::size_t i = 0; i < input.sites.size(); ++i)
    spec.class_of_site.push_back(i % 2);
  const ModelSolution explicit_spec = SolveWith(input, true, true, &spec);
  ASSERT_TRUE(explicit_spec.ok) << explicit_spec.error;
  EXPECT_EQ(ModelSolutionFingerprint(detected),
            ModelSolutionFingerprint(explicit_spec));

  // Class ids are renumbered by first occurrence: {7,3,7,3,...} is the same
  // partition as {0,1,0,1,...}.
  SiteClassSpec sparse;
  for (std::size_t i = 0; i < input.sites.size(); ++i)
    sparse.class_of_site.push_back(i % 2 == 0 ? 7 : 3);
  const ModelSolution sparse_spec = SolveWith(input, true, true, &sparse);
  ASSERT_TRUE(sparse_spec.ok) << sparse_spec.error;
  EXPECT_EQ(ModelSolutionFingerprint(detected),
            ModelSolutionFingerprint(sparse_spec));

  // Collapse on/off under one explicit partition is the same bit-identity
  // as under the detected one.
  const ModelSolution flat_spec = SolveWith(input, false, true, &spec);
  ASSERT_TRUE(flat_spec.ok) << flat_spec.error;
  EXPECT_EQ(ModelSolutionFingerprint(detected),
            ModelSolutionFingerprint(flat_spec));
}

TEST(HierSolver, ExplicitSpecValidationFailures) {
  const ModelInput input = NodesInput(workload::MakeMB4, 4, 4);

  SiteClassSpec wrong_size;
  wrong_size.class_of_site = {0, 1, 0};  // 3 entries for 4 sites
  ModelSolution sol = SolveWith(input, true, true, &wrong_size);
  EXPECT_FALSE(sol.ok);
  EXPECT_NE(sol.error.find("size"), std::string::npos) << sol.error;
  EXPECT_TRUE(sol.sites.empty());

  // Grouping a log-disk site with a no-log-disk site: the coupling topology
  // differs, so the spec is rejected rather than approximated.
  ModelInput mixed = input;
  mixed.sites[0].separate_log_disk = true;
  ASSERT_TRUE(mixed.Validate());
  SiteClassSpec bad_group;
  bad_group.class_of_site = {0, 0, 1, 1};
  sol = SolveWith(mixed, true, true, &bad_group);
  EXPECT_FALSE(sol.ok);
  EXPECT_NE(sol.error.find("presence"), std::string::npos) << sol.error;
}

// ------------------------------------------------------------- shape keys --

TEST(HierSolver, ShapeKeyEncodesThePartition) {
  const ModelInput a = NodesInput(workload::MakeMB4, 4, 4);
  // Same presence pattern and site count, different request load: parameter
  // values are not part of the shape, and both partitions are {0,1,0,1}.
  const ModelInput b = NodesInput(workload::MakeMB4, 20, 4);
  EXPECT_EQ(SolveShapeKey(a), SolveShapeKey(b));

  // Perturbing one site's think time splits its class: {0,1,2,1} != {0,1,0,1}
  // even though chain presence is unchanged.
  ModelInput c = a;
  c.sites[0].think_time_ms += 1.0;
  ASSERT_TRUE(c.Validate());
  EXPECT_NE(SolveShapeKey(a), SolveShapeKey(c));

  // Different site counts never collide (the key length grows).
  EXPECT_NE(SolveShapeKey(a), SolveShapeKey(NodesInput(workload::MakeMB4, 4, 8)));
}

// --------------------------------------------- coupling storage regression --

// The flat coupling lists used to hold, for every site, the indices of every
// other site with a slave/coordinator chain: O(num_sites²) entries. The
// class-indexed lists hold one (class, count) entry per class: O(classes²)
// for the whole structure. Pinned by comparing heap bytes allocated by cold
// solves at 512 vs 1024 sites (2 classes each): every remaining allocation
// is linear in the site count, so doubling the sites must stay well under
// 3x the bytes — the quadratic lists alone would quadruple it (~33 MB at
// 1024 sites).
std::uint64_t ColdSolveBytes(const ModelInput& input, bool collapse) {
  CaratModel model(input);
  SolverOptions opts;
  opts.use_exact_mva = false;  // slave populations are in the thousands
  opts.collapse_site_classes = collapse;
  SolveArena arena;
  ModelSolution out;
  const std::uint64_t before = g_alloc_bytes.load(std::memory_order_relaxed);
  model.SolveInto(opts, &arena, nullptr, &out);
  const std::uint64_t after = g_alloc_bytes.load(std::memory_order_relaxed);
  EXPECT_TRUE(out.ok) << out.error;
  return after - before;
}

TEST(HierSolver, CouplingStorageIsClassBoundedNotSiteQuadratic) {
  const ModelInput half = NodesInput(workload::MakeMB4, 4, 512);
  const ModelInput full = NodesInput(workload::MakeMB4, 4, 1024);
  const std::uint64_t flat_half = ColdSolveBytes(half, false);
  const std::uint64_t flat_full = ColdSolveBytes(full, false);
  EXPECT_LT(flat_full, 3 * flat_half)
      << "flat cold-solve allocations grew quadratically: " << flat_half
      << " -> " << flat_full << " bytes";
  // Collapsed solves keep only per-site state (the class states plus the
  // expansion targets); they must not allocate more than the flat path.
  const std::uint64_t hier_full = ColdSolveBytes(full, true);
  EXPECT_LE(hier_full, flat_full);
}

TEST(HierSolver, WarmArenaSolveIsAllocationFree) {
  const ModelInput input = NodesInput(workload::MakeMB4, 4, 64);
  CaratModel model(input);
  SolverOptions opts;
  opts.use_exact_mva = false;
  for (const bool collapse : {true, false}) {
    opts.collapse_site_classes = collapse;
    SolveArena arena;
    ModelSolution out;
    model.SolveInto(opts, &arena, nullptr, &out);  // cold: allocates freely
    ASSERT_TRUE(out.ok) << out.error;
    const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
    model.SolveInto(opts, &arena, nullptr, &out);
    const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "warm solve allocated (collapse=" << collapse << ")";
  }
}

// ------------------------------------------------------------- batch lanes --

TEST(HierSolver, BatchCollapsedLanesMatchScalarSolves) {
  // Three lanes of one shape (think time is a value, not part of the shape);
  // each lane keeps the 2-class partition.
  std::vector<ModelInput> lanes;
  for (const double think : {0.0, 50.0, 200.0}) {
    ModelInput input = NodesInput(workload::MakeMB4, 4, 16);
    for (SiteParams& site : input.sites) site.think_time_ms = think;
    lanes.push_back(std::move(input));
  }
  SolverOptions opts;  // collapse on by default
  std::vector<const ModelInput*> inputs;
  std::vector<ModelSolution> outs(lanes.size());
  std::vector<ModelSolution*> out_ptrs;
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    inputs.push_back(&lanes[w]);
    out_ptrs.push_back(&outs[w]);
  }
  BatchSolveArena arena;
  CaratModel::SolveBatchInto(inputs.data(), lanes.size(), opts, &arena,
                             nullptr, out_ptrs.data());
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    ASSERT_TRUE(outs[w].ok) << "lane " << w << ": " << outs[w].error;
    ModelSolution scalar;
    CaratModel(lanes[w]).SolveInto(opts, nullptr, nullptr, &scalar);
    EXPECT_EQ(ModelSolutionFingerprint(scalar),
              ModelSolutionFingerprint(outs[w]))
        << "lane " << w;
  }
}

// --------------------------------------------------------- large-N sweeps --

TEST(HierSolver, FourThousandSitesSolveCollapsesAndStaysClassUniform) {
  const ModelInput input = NodesInput(workload::MakeMB4, 4, 4096);
  const ModelSolution sol = SolveWith(input, true, /*exact=*/false);
  ASSERT_TRUE(sol.ok) << sol.error;
  EXPECT_TRUE(sol.converged);
  ASSERT_EQ(sol.sites.size(), 4096u);
  // Every site is a replica of site 0 or site 1; the expanded solution must
  // be bitwise uniform within each class.
  for (std::size_t i = 2; i < sol.sites.size(); ++i) {
    const SiteSolution& rep = sol.sites[i % 2];
    const SiteSolution& s = sol.sites[i];
    ASSERT_EQ(std::memcmp(&rep.classes, &s.classes, sizeof(rep.classes)), 0)
        << "site " << i;
    ASSERT_EQ(rep.txn_per_s, s.txn_per_s) << "site " << i;
    ASSERT_EQ(rep.cpu_utilization, s.cpu_utilization) << "site " << i;
  }
  EXPECT_GT(sol.TotalTxnPerSec(), 0.0);
}

TEST(HierSolver, FourThousandSitesGeneratedClassesSolve) {
  fuzz::GeneratorOptions gopts;
  gopts.min_sites = 4096;
  gopts.max_sites = 4096;
  gopts.site_classes = 8;
  util::Rng rng(4096);
  const fuzz::Scenario s = fuzz::GenerateScenario(&rng, gopts);
  ASSERT_TRUE(s.input.Validate());
  const ModelSolution sol = SolveWith(s.input, true, /*exact=*/false);
  ASSERT_TRUE(sol.ok) << sol.error;
  EXPECT_EQ(sol.sites.size(), 4096u);
}

// ------------------------------------------------- generator class mode ----

TEST(GeneratorClassMode, FiveThousandDrawsDeterministicAndValidAtN1024) {
  fuzz::GeneratorOptions gopts;
  gopts.min_sites = 1024;
  gopts.max_sites = 1024;
  gopts.site_classes = 8;
  const int slave_cap = 2 * std::max(1, gopts.max_population);
  util::Rng rng(77), replay(77);
  for (int i = 0; i < 5000; ++i) {
    const fuzz::Scenario s = fuzz::GenerateScenario(&rng, gopts);
    ASSERT_EQ(s.input.sites.size(), 1024u) << "draw " << i;
    ASSERT_TRUE(s.input.Validate()) << "draw " << i;
    // The large-N population convention: slave chains are capped so the
    // per-site MVA population does not grow with the site count.
    for (const SiteParams& site : s.input.sites) {
      ASSERT_LE(site.Class(TxnType::kDROS).population, slave_cap);
      ASSERT_LE(site.Class(TxnType::kDUS).population, slave_cap);
    }
    if (i % 100 == 0) {
      // Same seed, same bytes — and the solver recovers at most
      // `site_classes` classes from the replicated templates. The class ids
      // follow the presence bytes (width 2 at 1024 sites); a trailing byte
      // carries the CC backend id.
      const fuzz::Scenario r = fuzz::GenerateScenario(&replay, gopts);
      ASSERT_EQ(fuzz::Serialize(s), fuzz::Serialize(r)) << "draw " << i;
      const std::string key = SolveShapeKey(s.input);
      const std::size_t n = s.input.sites.size();
      ASSERT_EQ(key.size(), n * 3 + 1);
      std::size_t max_id = 0;
      for (std::size_t j = 0; j < n; ++j) {
        std::uint16_t id;
        std::memcpy(&id, key.data() + n + 2 * j, sizeof(id));
        max_id = std::max<std::size_t>(max_id, id);
      }
      EXPECT_LT(max_id, static_cast<std::size_t>(gopts.site_classes))
          << "draw " << i;
    } else {
      (void)fuzz::GenerateScenario(&replay, gopts);
    }
  }
}

// --------------------------------------------- model vs testbed, large N ---

// The validation suite pins the paper's 2-node design points; this pins the
// largest configuration the sharded testbed kernel reaches in the tier-1
// budget. Shards = 0 uses every core (clamped to the site count), and the
// model — solved hierarchically, 2 classes — must still track the
// simulation on aggregate throughput.
TEST(HierValidation, ModelTracksTestbedAtSixteenSites) {
  ModelInput input = NodesInput(workload::MakeMB4, 4, 16);
  // Large-N slave-population convention: WorkloadSpec::ToModelInput gives
  // every site one slave job per coordinator elsewhere — at 2 nodes (the
  // paper's testbed, where every remote request lands on the one other
  // node) that is exact, but at 16 nodes each coordinator's r_dist remote
  // requests spread over 15 sites, so the expected concurrent slaves per
  // site is elsewhere * r_dist / other_nodes, not elsewhere. Without the
  // rescale the model sees ~7x the real slave load and under-predicts
  // throughput by half (the same break the generator's slave cap fixes).
  const int other_nodes = static_cast<int>(input.sites.size()) - 1;
  const int r_dist = input.sites[0].Class(TxnType::kDROC).remote_requests;
  for (SiteParams& site : input.sites) {
    for (TxnType t : {TxnType::kDROS, TxnType::kDUS}) {
      ClassParams& slave = site.Class(t);
      if (slave.population <= 0) continue;
      slave.population =
          std::max(1, slave.population * r_dist / other_nodes);
    }
  }
  ASSERT_TRUE(input.Validate());
  const ModelSolution model = SolveWith(input, true);
  ASSERT_TRUE(model.ok) << model.error;
  ASSERT_TRUE(model.converged);

  carat::TestbedOptions topts;
  topts.seed = 16;
  topts.shards = 0;
  topts.warmup_ms = 20'000;
  topts.measure_ms = 200'000;
  const carat::TestbedResult sim = carat::RunTestbed(input, topts);
  ASSERT_TRUE(sim.ok) << sim.error;
  ASSERT_TRUE(sim.database_consistent);
  ASSERT_EQ(sim.nodes.size(), 16u);

  EXPECT_LT(util::RelDiff(model.TotalTxnPerSec(), sim.TotalTxnPerSec()), 0.25)
      << "XPUT model=" << model.TotalTxnPerSec()
      << " sim=" << sim.TotalTxnPerSec();
  // Class members are symmetric in the model; the simulation only differs
  // by sampling noise, so per-node throughputs stay near their class mean.
  for (std::size_t i = 0; i < sim.nodes.size(); ++i) {
    EXPECT_LT(
        util::RelDiff(model.sites[i].txn_per_s, sim.nodes[i].txn_per_s), 0.35)
        << "node " << i;
  }
}

}  // namespace
}  // namespace carat::model
