// Model-vs-testbed validation, mirroring Section 6 of the paper: the
// analytical predictions must track the simulated measurements for every
// workload, and both must show the paper's qualitative shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "carat/testbed.h"
#include "util/approx.h"
#include "model/solver.h"
#include "workload/spec.h"

namespace carat {
namespace {

using model::TxnType;

struct Pair {
  model::ModelSolution model;
  TestbedResult sim;
};

Pair Solve(const workload::WorkloadSpec& wl, std::uint64_t seed = 1) {
  const model::ModelInput input = wl.ToModelInput();
  Pair p;
  p.model = model::CaratModel(input).Solve();
  TestbedOptions opts;
  opts.seed = seed;
  opts.warmup_ms = 50'000;
  opts.measure_ms = 800'000;
  p.sim = RunTestbed(input, opts);
  return p;
}

class ValidationTest : public ::testing::TestWithParam<int> {};

TEST_P(ValidationTest, ModelTracksTestbedAtModerateContention) {
  const int which = GetParam();
  workload::WorkloadSpec wl;
  switch (which) {
    case 0: wl = workload::MakeLB8(8); break;
    case 1: wl = workload::MakeMB4(8); break;
    case 2: wl = workload::MakeMB8(8); break;
    default: wl = workload::MakeUB6(8); break;
  }
  const Pair p = Solve(wl);
  ASSERT_TRUE(p.model.ok) << p.model.error;
  ASSERT_TRUE(p.sim.ok) << p.sim.error;
  ASSERT_TRUE(p.sim.database_consistent);
  for (std::size_t i = 0; i < p.sim.nodes.size(); ++i) {
    const auto& m = p.model.sites[i];
    const auto& s = p.sim.nodes[i];
    // The paper reports agreement within roughly 10-25%; we allow 25% for
    // throughput and utilizations at the moderate-contention design point.
    EXPECT_LT(util::RelDiff(m.txn_per_s, s.txn_per_s), 0.25)
        << wl.name << " node " << i << " XPUT model=" << m.txn_per_s
        << " sim=" << s.txn_per_s;
    EXPECT_LT(util::RelDiff(m.cpu_utilization, s.cpu_utilization), 0.25)
        << wl.name << " node " << i;
    EXPECT_LT(util::RelDiff(m.dio_per_s, s.dio_per_s), 0.25)
        << wl.name << " node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ValidationTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(Validation, NormalizedThroughputPeaksThenDeclines) {
  // Figure 5/8 shape: records/s rises to a peak near n = 8 and declines by
  // n = 20 (deadlock-induced rollback), in both model and testbed.
  double model_peak = 0, model_tail = 0, sim_peak = 0, sim_tail = 0;
  for (const int n : {8, 20}) {
    const Pair p = Solve(workload::MakeLB8(n));
    ASSERT_TRUE(p.model.ok);
    ASSERT_TRUE(p.sim.ok);
    if (n == 8) {
      model_peak = p.model.TotalRecordsPerSec();
      sim_peak = p.sim.TotalRecordsPerSec();
    } else {
      model_tail = p.model.TotalRecordsPerSec();
      sim_tail = p.sim.TotalRecordsPerSec();
    }
  }
  EXPECT_GT(model_peak, model_tail);
  EXPECT_GT(sim_peak, sim_tail);
}

TEST(Validation, AbortProbabilityGrowsWithTransactionSize) {
  double prev_sim = -1.0;
  for (const int n : {4, 12, 20}) {
    const Pair p = Solve(workload::MakeMB8(n));
    ASSERT_TRUE(p.sim.ok);
    double aborts = 0, submissions = 0;
    for (const auto& node : p.sim.nodes) {
      for (const auto& t : node.types) {
        aborts += t.aborts;
        submissions += t.submissions;
      }
    }
    const double pa = submissions > 0 ? aborts / submissions : 0.0;
    EXPECT_GT(pa, prev_sim) << "n=" << n;
    prev_sim = pa;
  }
  EXPECT_GT(prev_sim, 0.01);  // clearly nonzero at n=20
}

TEST(Validation, NodeAOutperformsNodeBEverywhere) {
  for (const int n : {4, 12}) {
    const Pair p = Solve(workload::MakeMB4(n));
    ASSERT_TRUE(p.model.ok);
    ASSERT_TRUE(p.sim.ok);
    EXPECT_GT(p.model.sites[0].txn_per_s, p.model.sites[1].txn_per_s);
    EXPECT_GT(p.sim.nodes[0].txn_per_s, p.sim.nodes[1].txn_per_s);
  }
}

TEST(Validation, PerTypeThroughputOrderingMatchesTable5) {
  // Table 5: LRO > DRO > LU > DU at each node (read-only beats update;
  // local beats distributed within a class).
  const Pair p = Solve(workload::MakeMB4(8));
  ASSERT_TRUE(p.sim.ok);
  for (const auto& node : p.sim.nodes) {
    // Read-only beats update within each locality class, at every node.
    EXPECT_GT(node.Type(TxnType::kLRO).throughput_per_s,
              node.Type(TxnType::kLU).throughput_per_s);
    EXPECT_GT(node.Type(TxnType::kDROC).throughput_per_s,
              node.Type(TxnType::kDUC).throughput_per_s);
  }
  // Local beats distributed at the fast node (Table 5, Node A). At Node B a
  // distributed transaction offloads half its work to A's faster disk, so
  // the ordering is not guaranteed there.
  const auto& a = p.sim.nodes[0];
  EXPECT_GT(a.Type(TxnType::kLRO).throughput_per_s,
            a.Type(TxnType::kDROC).throughput_per_s);
  EXPECT_GT(a.Type(TxnType::kLU).throughput_per_s,
            a.Type(TxnType::kDUC).throughput_per_s);
  // And the model agrees on the ordering.
  for (const auto& site : p.model.sites) {
    EXPECT_GT(site.Class(TxnType::kLRO).throughput_per_s,
              site.Class(TxnType::kLU).throughput_per_s);
    EXPECT_GT(site.Class(TxnType::kDROC).throughput_per_s,
              site.Class(TxnType::kDUC).throughput_per_s);
  }
}

TEST(Validation, ThreeNodeClusterAgreesToo) {
  // The paper validates on two nodes; the framework must hold beyond that.
  workload::WorkloadSpec wl = workload::MakeMB4(8, /*num_nodes=*/3);
  wl.block_io_ms = {15.0, 30.0, 40.0};
  const Pair p = Solve(wl);
  ASSERT_TRUE(p.model.ok) << p.model.error;
  ASSERT_TRUE(p.sim.ok) << p.sim.error;
  ASSERT_TRUE(p.sim.database_consistent);
  ASSERT_EQ(p.sim.nodes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(util::RelDiff(p.model.sites[i].txn_per_s, p.sim.nodes[i].txn_per_s),
              0.25)
        << "node " << i;
    EXPECT_LT(util::RelDiff(p.model.sites[i].dio_per_s, p.sim.nodes[i].dio_per_s),
              0.25)
        << "node " << i;
  }
  // Faster disks, more throughput: strict ordering across the three nodes.
  EXPECT_GT(p.sim.nodes[0].txn_per_s, p.sim.nodes[1].txn_per_s);
  EXPECT_GT(p.sim.nodes[1].txn_per_s, p.sim.nodes[2].txn_per_s);
}

TEST(Validation, DiskRemainsTheBottleneckResource) {
  // Table 2 parameterization makes the single shared disk the bottleneck:
  // disk utilization exceeds CPU utilization at every point we test.
  for (const int n : {4, 12}) {
    const Pair p = Solve(workload::MakeMB8(n));
    ASSERT_TRUE(p.sim.ok);
    for (const auto& node : p.sim.nodes) {
      EXPECT_GT(node.db_disk_utilization, node.cpu_utilization);
    }
  }
}

TEST(Validation, ResponseTimesTrackPerType) {
  // Per-commit response times (including retries) should agree between
  // model and testbed at the moderate design point.
  const Pair p = Solve(workload::MakeMB4(8));
  ASSERT_TRUE(p.model.ok);
  ASSERT_TRUE(p.sim.ok);
  for (std::size_t i = 0; i < p.sim.nodes.size(); ++i) {
    for (const TxnType t : {TxnType::kLRO, TxnType::kLU, TxnType::kDROC,
                            TxnType::kDUC}) {
      const double model_r = p.model.sites[i].Class(t).response_ms;
      const double sim_r = p.sim.nodes[i].Type(t).response_ms;
      ASSERT_GT(sim_r, 0.0) << Name(t);
      EXPECT_LT(util::RelDiff(model_r, sim_r), 0.30)
          << Name(t) << " node " << i << " model=" << model_r
          << " sim=" << sim_r;
    }
  }
}

TEST(Validation, DelayCenterDecompositionTracksMeasuredWaits) {
  // The model's per-commit delay-center demands (D_LW, D_RW, D_CW) should
  // match the testbed's measured synchronization times, not just totals.
  const Pair p = Solve(workload::MakeMB4(8));
  ASSERT_TRUE(p.model.ok);
  ASSERT_TRUE(p.sim.ok);
  for (std::size_t i = 0; i < p.sim.nodes.size(); ++i) {
    // Remote wait: coordinators spend seconds per commit shipping requests.
    const auto& m_duc = p.model.sites[i].Class(TxnType::kDUC);
    const auto& s_duc = p.sim.nodes[i].Type(TxnType::kDUC);
    EXPECT_GT(s_duc.remote_wait_ms, 0.0);
    EXPECT_LT(util::RelDiff(m_duc.d_rw_ms, s_duc.remote_wait_ms), 0.35)
        << "node " << i << " D_RW model=" << m_duc.d_rw_ms
        << " sim=" << s_duc.remote_wait_ms;
    // Commit wait: one 2PC synchronization per commit, order of the slave
    // commit processing (~2 forced writes).
    EXPECT_GT(s_duc.commit_wait_ms, 0.0);
    EXPECT_LT(util::RelDiff(m_duc.d_cw_ms, s_duc.commit_wait_ms), 0.6)
        << "node " << i << " D_CW model=" << m_duc.d_cw_ms
        << " sim=" << s_duc.commit_wait_ms;
    // Local transactions never wait remotely or for commit rounds.
    const auto& s_lro = p.sim.nodes[i].Type(TxnType::kLRO);
    EXPECT_DOUBLE_EQ(s_lro.remote_wait_ms, 0.0);
    EXPECT_DOUBLE_EQ(s_lro.commit_wait_ms, 0.0);
  }
}

TEST(Validation, ModelLockQuantitiesMatchSimCounters) {
  // The model's blocking probability should be the same order as the
  // testbed's measured blocks/requests ratio.
  const Pair p = Solve(workload::MakeLB8(12));
  ASSERT_TRUE(p.model.ok);
  ASSERT_TRUE(p.sim.ok);
  for (std::size_t i = 0; i < p.sim.nodes.size(); ++i) {
    const auto& s = p.sim.nodes[i];
    const double measured_pb =
        s.lock_requests > 0
            ? static_cast<double>(s.lock_blocks) / s.lock_requests
            : 0.0;
    const double model_pb = p.model.sites[i].Class(TxnType::kLU).pb;
    EXPECT_GT(measured_pb, 0.0);
    EXPECT_GT(model_pb, 0.0);
    EXPECT_LT(util::RelDiff(measured_pb, model_pb), 0.75)
        << "node " << i << " measured=" << measured_pb
        << " model=" << model_pb;
  }
}

}  // namespace
}  // namespace carat
