#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/approx.h"
#include "util/cli.h"
#include "util/linear.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace carat::util {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ConfidenceHalfWidth(), 0.0);
}

TEST(StatAccumulator, MeanAndVariance) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(StatAccumulator, MergeMatchesCombinedStream) {
  StatAccumulator a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
}

TEST(StatAccumulator, SingleObservationHasZeroCi) {
  StatAccumulator s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.ConfidenceHalfWidth(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
}

TEST(TimeWeightedStat, PiecewiseConstantSignal) {
  TimeWeightedStat tw;
  tw.Update(0.0, 2.0);   // value 2 on [0, 10)
  tw.Update(10.0, 4.0);  // value 4 on [10, 30)
  EXPECT_NEAR(tw.MeanAt(30.0), (2.0 * 10 + 4.0 * 20) / 30.0, 1e-12);
}

TEST(TimeWeightedStat, BeforeFirstUpdateIsZero) {
  TimeWeightedStat tw;
  EXPECT_DOUBLE_EQ(tw.MeanAt(5.0), 0.0);
}

TEST(LinearSolve, Identity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a(i, i) = 1.0;
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, {1.0, 2.0, 3.0}, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LinearSolve, RequiresPivoting) {
  // First pivot is zero; solvable only with row exchange.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, {3.0, 5.0}, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolve, SingularFails) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}, &x));
}

TEST(LinearSolve, RandomSystemRoundTrips) {
  Rng rng(7);
  const std::size_t n = 12;
  Matrix a(n, n);
  std::vector<double> truth(n), b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = rng.NextDouble() * 10 - 5;
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.NextDouble() * 2 - 1;
    a(i, i) += 5.0;  // diagonally dominant => well conditioned
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * truth[j];
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, &x));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-9);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Rng a2(42);
  EXPECT_NE(a2(), c());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedCoversRangeUniformly) {
  Rng rng(2);
  int counts[10] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(3);
  StatAccumulator s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.NextExponential(5.0));
  EXPECT_NEAR(s.Mean(), 5.0, 0.05);
}

// The generator streams are part of the repro-file contract: a fuzz finding
// names only (seed, index), so the sequences below must never change. The
// seed-0 SplitMix64 values match the published reference implementation's.
TEST(SplitMix64, PinnedReferenceSequence) {
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm(), 0x06c45d188009454fULL);
  EXPECT_EQ(sm(), 0xf88bb8a8724c81ecULL);
  EXPECT_EQ(sm(), 0x1b39896a51a8749bULL);
  SplitMix64 sm42(42);
  EXPECT_EQ(sm42(), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(sm42(), 0x28efe333b266f103ULL);
  EXPECT_EQ(sm42(), 0x47526757130f9f52ULL);
}

TEST(Rng, PinnedSequence) {
  Rng rng(7);
  EXPECT_EQ(rng(), 0xb358faf74ef9765aULL);
  EXPECT_EQ(rng(), 0x475c3d964f482cd2ULL);
  EXPECT_EQ(rng(), 0xd6f1d349952c7996ULL);
  EXPECT_EQ(rng(), 0xfb2938731e807240ULL);
  Rng d(7);
  EXPECT_EQ(d.NextDouble(), 0.7005764821796896);
  EXPECT_EQ(d.NextDouble(), 0.27875122947378428);
  EXPECT_EQ(d.NextDouble(), 0.83962746187641979);
}

TEST(Rng, NextIntInIsInclusiveAndPinned) {
  Rng rng(123);
  const std::int64_t expected[] = {-1, 9, 3, -2, 1, 9};
  for (std::int64_t e : expected) EXPECT_EQ(rng.NextIntIn(-3, 9), e);
  Rng bounds(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = bounds.NextIntIn(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextIntIn(4, 4), 4);
}

TEST(Rng, NextLogUniformStaysInRangeAndIsPinned) {
  Rng rng(99);
  EXPECT_EQ(rng.NextLogUniform(0.5, 2000.0), 9.0161725461424798);
  EXPECT_EQ(rng.NextLogUniform(0.5, 2000.0), 53.768996167438353);
  EXPECT_EQ(rng.NextLogUniform(0.5, 2000.0), 11.5165272834546);
  EXPECT_EQ(rng.NextLogUniform(0.5, 2000.0), 603.93954999823416);
  Rng range(6);
  int decades[4] = {};  // [1e-2,1e-1), [1e-1,1), [1,10), [10,100)
  for (int i = 0; i < 40000; ++i) {
    const double v = range.NextLogUniform(0.01, 100.0);
    EXPECT_GE(v, 0.01);
    EXPECT_LT(v, 100.0);
    ++decades[static_cast<int>(std::floor(std::log10(v))) + 2];
  }
  // Log-uniform: each decade carries a quarter of the mass.
  for (int c : decades) EXPECT_NEAR(c, 10000, 400);
  EXPECT_EQ(range.NextLogUniform(3.0, 3.0), 3.0);
}

TEST(Approx, RelDiffIsSymmetricAndZeroOnEqual) {
  EXPECT_EQ(RelDiff(3.0, 3.0), 0.0);
  EXPECT_EQ(RelDiff(0.0, 0.0), 0.0);
  EXPECT_EQ(RelDiff(-0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelDiff(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(RelDiff(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(RelDiff(-1.0, 1.0), 2.0);
  EXPECT_TRUE(std::isinf(
      RelDiff(1.0, std::numeric_limits<double>::infinity())));
}

TEST(Approx, AbsRelAndFloorSemantics) {
  EXPECT_TRUE(ApproxAbs(1.0, 1.05, 0.1));
  EXPECT_FALSE(ApproxAbs(1.0, 1.2, 0.1));
  EXPECT_TRUE(ApproxRel(100.0, 101.0, 0.02));
  EXPECT_FALSE(ApproxRel(100.0, 103.0, 0.02));
  // Relative comparison alone fails near zero; the floor rescues it.
  EXPECT_FALSE(ApproxRel(0.0, 1e-15, 1e-9));
  EXPECT_TRUE(ApproxRelAbs(0.0, 1e-15, 1e-9, 1e-12));
  EXPECT_FALSE(ApproxRelAbs(0.0, 1e-3, 1e-9, 1e-12));
  // Equal values always pass, including infinities; NaN never does.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ApproxAbs(inf, inf, 0.0));
  EXPECT_TRUE(ApproxRel(inf, inf, 0.0));
  EXPECT_FALSE(ApproxRel(inf, 1.0, 0.5));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ApproxAbs(nan, nan, 1.0));
  EXPECT_FALSE(ApproxRel(nan, 1.0, 1.0));
  EXPECT_FALSE(ApproxRelAbs(nan, nan, 1.0, 1.0));
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.SetHeader({"a", "long-header"});
  t.AddRow({"xx", "1"});
  t.AddSeparator();
  t.AddRow({"y", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("xx"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(0.945, 2), "0.94");
  EXPECT_EQ(TextTable::Num(12.5, 1), "12.5");
}

TEST(Cli, ParseJobsAcceptsPositiveIntegers) {
  int jobs = 0;
  ASSERT_TRUE(ParseJobs("1", &jobs));
  EXPECT_EQ(jobs, 1);
  ASSERT_TRUE(ParseJobs("64", &jobs));
  EXPECT_EQ(jobs, 64);
}

TEST(Cli, ParseJobsRejectsZeroNegativeAndNonNumeric) {
  int jobs = -1;
  EXPECT_FALSE(ParseJobs("0", &jobs));
  EXPECT_FALSE(ParseJobs("-2", &jobs));
  EXPECT_FALSE(ParseJobs("4x", &jobs));
  EXPECT_FALSE(ParseJobs("x4", &jobs));
  EXPECT_FALSE(ParseJobs("", &jobs));
  EXPECT_FALSE(ParseJobs("2.5", &jobs));
  EXPECT_FALSE(ParseJobs("10000000", &jobs));  // above the sanity cap
  EXPECT_EQ(jobs, -1);  // rejected parses never write the output
}

TEST(Cli, ParseSizesAcceptsCommaSeparatedPositives) {
  std::vector<int> sizes;
  std::string bad;
  ASSERT_TRUE(ParseSizes("4,8,12", &sizes, &bad));
  EXPECT_EQ(sizes, (std::vector<int>{4, 8, 12}));
  ASSERT_TRUE(ParseSizes("7", &sizes, &bad));
  EXPECT_EQ(sizes, (std::vector<int>{7}));
}

TEST(Cli, ParseHostPortSplitsOnTheLastColon) {
  std::string host;
  int port = -1;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:7411", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7411);
  ASSERT_TRUE(ParseHostPort("localhost:0", &host, &port));
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 0);  // ephemeral bind
  ASSERT_TRUE(ParseHostPort("0.0.0.0:65535", &host, &port));
  EXPECT_EQ(port, 65535);
}

TEST(Cli, ParseHostPortRejectsMalformedAddresses) {
  std::string host = "unchanged";
  int port = -1;
  EXPECT_FALSE(ParseHostPort("hostonly", &host, &port));
  EXPECT_FALSE(ParseHostPort(":80", &host, &port));       // empty host
  EXPECT_FALSE(ParseHostPort("host:", &host, &port));     // empty port
  EXPECT_FALSE(ParseHostPort("host:99999", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:-1", &host, &port));
  EXPECT_FALSE(ParseHostPort("host:80x", &host, &port));
  EXPECT_FALSE(ParseHostPort("", &host, &port));
  EXPECT_FALSE(ParseHostPort(nullptr, &host, &port));
  EXPECT_EQ(host, "unchanged");  // rejected parses never write the outputs
  EXPECT_EQ(port, -1);
}

TEST(Cli, ParseHostPortHandlesBracketedIpv6Hosts) {
  std::string host;
  int port = -1;
  ASSERT_TRUE(ParseHostPort("[::1]:8080", &host, &port));
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, 8080);
  ASSERT_TRUE(ParseHostPort("[fe80::2%eth0]:7411", &host, &port));
  EXPECT_EQ(host, "fe80::2%eth0");
  EXPECT_EQ(port, 7411);

  // Regression: an unbracketed multi-colon host is ambiguous — splitting
  // "::1:8080" on any single colon silently mis-attributes part of the
  // address as the port — so it is rejected instead of mis-parsed.
  EXPECT_FALSE(ParseHostPort("::1:8080", &host, &port));
  EXPECT_FALSE(ParseHostPort("fe80::2:7411", &host, &port));

  // Malformed bracketed forms.
  EXPECT_FALSE(ParseHostPort("[]:80", &host, &port));     // empty host
  EXPECT_FALSE(ParseHostPort("[::1]", &host, &port));     // no port
  EXPECT_FALSE(ParseHostPort("[::1]8080", &host, &port));  // missing colon
  EXPECT_FALSE(ParseHostPort("[::1]:", &host, &port));    // empty port
}

TEST(Cli, ParseHostPortPortZeroPolicy) {
  std::string host;
  int port = -1;
  // Listen endpoints: 0 asks the kernel for an ephemeral port.
  ASSERT_TRUE(ParseHostPort("127.0.0.1:0", &host, &port,
                            PortZeroPolicy::kAllow));
  EXPECT_EQ(port, 0);
  // Connect endpoints: a client dialing port 0 is always a scripting bug.
  host = "unchanged";
  port = -1;
  EXPECT_FALSE(ParseHostPort("127.0.0.1:0", &host, &port,
                             PortZeroPolicy::kReject));
  EXPECT_EQ(host, "unchanged");
  EXPECT_EQ(port, -1);
  ASSERT_TRUE(ParseHostPort("127.0.0.1:7411", &host, &port,
                            PortZeroPolicy::kReject));
  EXPECT_EQ(port, 7411);
}

TEST(Cli, ParseSizesNamesTheBadToken) {
  std::vector<int> sizes;
  std::string bad;
  EXPECT_FALSE(ParseSizes("4,zero,8", &sizes, &bad));
  EXPECT_EQ(bad, "zero");
  EXPECT_FALSE(ParseSizes("4,-8", &sizes, &bad));
  EXPECT_EQ(bad, "-8");
  EXPECT_FALSE(ParseSizes("", &sizes, &bad));
}

}  // namespace
}  // namespace carat::util
