#include <gtest/gtest.h>

#include "db/database.h"
#include "wal/log.h"

namespace carat::wal {
namespace {

TEST(Database, GranuleMapping) {
  db::Database d(10, 6);
  EXPECT_EQ(d.num_records(), 60);
  EXPECT_EQ(d.GranuleOf(0), 0);
  EXPECT_EQ(d.GranuleOf(5), 0);
  EXPECT_EQ(d.GranuleOf(6), 1);
  EXPECT_EQ(d.GranuleOf(59), 9);
}

TEST(Database, ReadWriteRoundTrip) {
  db::Database d(3, 4);
  d.Write(5, 42);
  EXPECT_EQ(d.Read(5), 42);
  EXPECT_EQ(d.Read(4), 0);
}

TEST(Database, GranuleImageRoundTrip) {
  db::Database d(3, 4);
  d.Write(4, 1);
  d.Write(5, 2);
  const auto image = d.ReadGranule(1);
  d.Write(4, 99);
  d.WriteGranule(1, image);
  EXPECT_EQ(d.Read(4), 1);
  EXPECT_EQ(d.Read(5), 2);
}

TEST(Wal, RollbackRestoresBeforeImages) {
  db::Database d(4, 2);
  Log log;
  d.Write(0, 10);
  log.LogBeforeImage(1, 0, d.ReadGranule(0));
  d.Write(0, 11);
  d.Write(1, 12);
  const int restored = log.Rollback(1, &d);
  EXPECT_EQ(restored, 1);
  EXPECT_EQ(d.Read(0), 10);
  EXPECT_EQ(d.Read(1), 0);  // same granule: restored from the image
  EXPECT_TRUE(log.IsAborted(1));
}

TEST(Wal, OldestImageWinsOnDoubleUpdate) {
  db::Database d(4, 2);
  Log log;
  log.LogBeforeImage(7, 2, d.ReadGranule(2));  // image: zeros
  d.Write(4, 1);
  log.LogBeforeImage(7, 2, d.ReadGranule(2));  // image: {1, 0}
  d.Write(4, 2);
  log.Rollback(7, &d);
  EXPECT_EQ(d.Read(4), 0);  // fully undone, not the intermediate value
}

TEST(Wal, CommitMakesEffectsDurableThroughRecovery) {
  db::Database d(4, 2);
  Log log;
  log.LogBeforeImage(1, 0, d.ReadGranule(0));
  d.Write(0, 5);
  log.LogCommit(1);
  db::Database copy = d;
  log.Recover(&copy);
  EXPECT_EQ(copy.Read(0), 5);
  EXPECT_TRUE(log.IsCommitted(1));
}

TEST(Wal, RecoveryUndoesUnfinishedTransactions) {
  db::Database d(4, 2);
  Log log;
  // Txn 1 commits, txn 2 is in flight at "crash" time.
  log.LogBeforeImage(1, 0, d.ReadGranule(0));
  d.Write(0, 5);
  log.LogCommit(1);
  log.LogBeforeImage(2, 0, d.ReadGranule(0));
  d.Write(0, 99);
  log.LogBeforeImage(2, 1, d.ReadGranule(1));
  d.Write(2, 77);

  log.Recover(&d);
  EXPECT_EQ(d.Read(0), 5);   // committed effect preserved
  EXPECT_EQ(d.Read(2), 0);   // in-flight effect undone
}

TEST(Wal, RecoveryDoesNotReundoRuntimeAborts) {
  // Regression: a transaction rolled back at run time must not have its
  // stale before image re-applied at recovery, or it would clobber later
  // committed writes to the same granule.
  db::Database d(4, 2);
  Log log;
  log.LogBeforeImage(1, 0, d.ReadGranule(0));  // image: zeros
  d.Write(0, 9);
  log.Rollback(1, &d);  // undone at run time; granule back to zeros

  log.LogBeforeImage(2, 0, d.ReadGranule(0));
  d.Write(0, 5);
  log.LogCommit(2);

  db::Database copy = d;
  log.Recover(&copy);
  EXPECT_EQ(copy.Read(0), 5);  // txn 2's committed write survives
}

TEST(Wal, PrepareRecordsAreJournaled) {
  Log log;
  log.LogPrepare(3);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].kind, RecordKind::kPrepare);
  EXPECT_EQ(log.records()[0].txn, 3u);
}

TEST(Wal, RollbackOfUnknownTxnIsEmpty) {
  db::Database d(2, 2);
  Log log;
  EXPECT_EQ(log.Rollback(42, &d), 0);
}

TEST(Wal, InterleavedTransactionsRecoverIndependently) {
  db::Database d(8, 2);
  Log log;
  // Three transactions touch disjoint granules; one commits, one aborts at
  // run time, one crashes mid-flight.
  log.LogBeforeImage(1, 0, d.ReadGranule(0));
  d.Write(0, 1);
  log.LogBeforeImage(2, 1, d.ReadGranule(1));
  d.Write(2, 2);
  log.LogBeforeImage(3, 2, d.ReadGranule(2));
  d.Write(4, 3);
  log.LogCommit(1);
  log.Rollback(2, &d);

  log.Recover(&d);
  EXPECT_EQ(d.Read(0), 1);  // committed
  EXPECT_EQ(d.Read(2), 0);  // aborted at run time
  EXPECT_EQ(d.Read(4), 0);  // crashed, undone by recovery
}

}  // namespace
}  // namespace carat::wal
