// Loopback integration tests for the network serving front-end (src/rpc):
// the poll()-based TcpServer, the blocking Client, and the fixed-bucket
// LatencyHistogram. Concurrency-sensitive paths (admission, deadlines,
// graceful drain, multi-client interleaving) are made deterministic with the
// same gate-the-pool trick serve_test uses: plug the worker pool with a
// blocking task so admitted requests sit in the dispatch queue until the
// test releases them.
//
// Carries the `tsan` label (tests/CMakeLists.txt): the poll thread, pool
// workers and client threads all cross the server mutex, so this suite is
// the ThreadSanitizer workout for the rpc layer.

#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "model/solver.h"
#include "rpc/client.h"
#include "rpc/latency_histogram.h"
#include "rpc/tcp_server.h"
#include "serve/query.h"
#include "serve/solver_service.h"

namespace carat {
namespace {

serve::SolverService::Options ServiceOptions(exec::ThreadPool* pool) {
  serve::SolverService::Options o;
  o.pool = pool;
  o.warm_start = false;  // cold solves are bit-identical across front-ends
  return o;
}

rpc::TcpServer::Options ServerOptions(serve::SolverService* service,
                                      exec::ThreadPool* pool) {
  rpc::TcpServer::Options o;
  o.service = service;
  o.pool = pool;
  return o;
}

void WaitForSubmitted(const rpc::TcpServer& server, std::uint64_t n) {
  while (server.stats().requests_submitted < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool ConnectTo(rpc::Client* client, const rpc::TcpServer& server) {
  std::string error;
  const bool ok =
      client->Connect("127.0.0.1", server.port(), &error,
                      /*recv_timeout_ms=*/30'000);
  EXPECT_TRUE(ok) << error;
  return ok;
}

// ---- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, EmptyReportsZero) {
  rpc::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileMs(50.0), 0.0);
  EXPECT_EQ(h.PercentileMs(99.0), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  rpc::LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(3);  // < 8 us: exact buckets
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.PercentileMs(50.0), 0.003);
  EXPECT_DOUBLE_EQ(h.PercentileMs(100.0), 0.003);
}

TEST(LatencyHistogram, PercentilesBoundRelativeError) {
  rpc::LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(1'000);  // 1 ms
  h.Record(100'000);                             // one 100 ms outlier
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.PercentileMs(50.0);
  const double p99 = h.PercentileMs(99.0);
  const double p100 = h.PercentileMs(100.0);
  // Upper bucket edges: within +12.5% of the true value, never below it.
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1.125);
  EXPECT_LE(p99, 1.125);  // rank 99 still falls in the 1 ms bucket
  EXPECT_GE(p100, 100.0);
  EXPECT_LE(p100, 112.5);
}

TEST(LatencyHistogram, HugeValuesClampIntoTheLastBucket) {
  rpc::LatencyHistogram h;
  h.Record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.PercentileMs(50.0), 0.0);
}

TEST(LatencyHistogram, ClearResets) {
  rpc::LatencyHistogram h;
  h.Record(1'000);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileMs(50.0), 0.0);
}

// ---- TcpServer over loopback ----------------------------------------------

TEST(TcpServer, AnswersByteIdenticallyToTheSharedFormatter) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // The acceptance bar: the TCP front-end answers with exactly the bytes
  // carat_serve would print for the same query line.
  serve::Query query;
  model::ModelInput input;
  ASSERT_TRUE(serve::ParseQuery("mb4 6", &query, &input, &error)) << error;
  const model::ModelSolution direct = model::CaratModel(input).Solve();
  const std::string expected = "x " + serve::FormatResult(query, direct);

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string response;
  ASSERT_TRUE(client.Request("x mb4 6", &response));
  EXPECT_EQ(response, expected);

  // And a cache hit replays the identical bytes.
  ASSERT_TRUE(client.Request("y mb4 6", &response));
  EXPECT_EQ(response, "y " + serve::FormatResult(query, direct));
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(TcpServer, MultipleClientsInterleaveAndEveryRequestIsAnswered) {
  exec::ThreadPool pool(2);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::thread> threads;
  std::vector<int> answered(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, &server, &answered] {
      rpc::Client client;
      if (!ConnectTo(&client, server)) return;
      for (int i = 0; i < kPerClient; ++i) {
        // Pipeline all requests before reading any response.
        const int n = 2 + (c + i) % 5;
        client.SendLine("c" + std::to_string(c) + "." + std::to_string(i) +
                        " mb4 " + std::to_string(n));
      }
      std::string response;
      for (int i = 0; i < kPerClient; ++i) {
        if (!client.ReadLine(&response)) break;
        // Every response belongs to this client and reports a solution.
        EXPECT_EQ(response.rfind("c" + std::to_string(c) + ".", 0), 0u)
            << response;
        EXPECT_NE(response.find(",ok,"), std::string::npos) << response;
        ++answered[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(answered[c], kPerClient);
  const rpc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.requests_completed,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.requests_rejected, 0u);
}

TEST(TcpServer, AdmissionBoundAnswersBusyOutOfOrder) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.max_inflight = 1;
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Plug the single worker: request "a" is admitted but cannot start, so
  // "b" deterministically finds the admission queue full.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendLine("a mb4 4"));
  ASSERT_TRUE(client.SendLine("b mb4 4"));

  // BUSY comes back first even though "a" was sent first: responses are
  // written per-completion, not in request order.
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "b BUSY");
  release.set_value();
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response.rfind("a mb4,4,ok", 0), 0u) << response;

  const rpc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_submitted, 1u);
  EXPECT_EQ(stats.requests_rejected, 1u);
  EXPECT_EQ(stats.requests_completed, 1u);
}

TEST(TcpServer, ExpiredDeadlineAnswersTimeoutWithoutSolving) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendLine("a mb4 4 deadline_ms=1"));
  WaitForSubmitted(server, 1);
  // Let the deadline lapse while the request sits in the dispatch queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();

  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "a TIMEOUT");
  EXPECT_EQ(server.stats().requests_timed_out, 1u);
  EXPECT_EQ(server.stats().requests_completed, 0u);
  // The whole point of queue-time deadlines: no solver work was done.
  EXPECT_EQ(service.stats().submitted, 0u);
  EXPECT_EQ(service.stats().solved, 0u);
}

TEST(TcpServer, GracefulDrainAnswersEveryAdmittedRequest) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine("g" + std::to_string(i) + " mb4 " +
                                std::to_string(4 + i)));
  }
  WaitForSubmitted(server, kRequests);

  // Shutdown mid-batch: it must block until all three queued solves have
  // been answered and flushed, then close the connection.
  std::thread shutdown([&server] { server.Shutdown(); });
  release.set_value();
  shutdown.join();

  int got = 0;
  std::string response;
  while (client.ReadLine(&response)) {
    EXPECT_EQ(response.rfind("g", 0), 0u) << response;
    EXPECT_NE(response.find(",ok,"), std::string::npos) << response;
    ++got;
  }
  EXPECT_EQ(got, kRequests);  // then clean EOF
  EXPECT_EQ(server.stats().requests_completed,
            static_cast<std::uint64_t>(kRequests));

  // Drained means drained: the listener is gone.
  rpc::Client late;
  std::string late_error;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port(), &late_error));
}

TEST(TcpServer, OversizedFrameIsRejectedAndConnectionClosed) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.max_line_bytes = 64;
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendLine(std::string(100, 'x')));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "? ERROR line exceeds 64 bytes");
  EXPECT_FALSE(client.ReadLine(&response));  // server closed the connection
  EXPECT_EQ(server.stats().frames_oversized, 1u);

  // An unbounded partial line (no newline at all) is also rejected.
  rpc::Client partial;
  ASSERT_TRUE(ConnectTo(&partial, server));
  ASSERT_TRUE(partial.SendRaw(std::string(100, 'y')));
  ASSERT_TRUE(partial.ReadLine(&response));
  EXPECT_EQ(response, "? ERROR line exceeds 64 bytes");
  EXPECT_FALSE(partial.ReadLine(&response));
  EXPECT_EQ(server.stats().frames_oversized, 2u);

  // The server itself is unharmed.
  rpc::Client fresh;
  ASSERT_TRUE(ConnectTo(&fresh, server));
  ASSERT_TRUE(fresh.Request("a mb4 4", &response));
  EXPECT_EQ(response.rfind("a mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, TornFrameIsDiscardedWithoutAnError) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendRaw("a mb4"));  // no terminating newline
  client.CloseSend();
  std::string response;
  EXPECT_FALSE(client.ReadLine(&response));  // discarded, no response, EOF

  EXPECT_EQ(server.stats().parse_errors, 0u);
  EXPECT_EQ(server.stats().requests_submitted, 0u);

  rpc::Client fresh;
  ASSERT_TRUE(ConnectTo(&fresh, server));
  ASSERT_TRUE(fresh.Request("b mb4 4", &response));
  EXPECT_EQ(response.rfind("b mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, MalformedRequestsAnswerErrorAndKeepTheConnection) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string response;
  ASSERT_TRUE(client.Request("a bogus 4", &response));
  EXPECT_EQ(response.rfind("a ERROR ", 0), 0u) << response;
  ASSERT_TRUE(client.Request("b mb4 4 deadline_ms=nope", &response));
  EXPECT_EQ(response.rfind("b ERROR ", 0), 0u) << response;
  EXPECT_EQ(server.stats().parse_errors, 2u);

  // Parse errors are per-request, not per-connection.
  ASSERT_TRUE(client.Request("c mb4 4", &response));
  EXPECT_EQ(response.rfind("c mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, StatsVerbReportsLiveCounters) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string response;
  ASSERT_TRUE(client.Request("a mb4 4", &response));
  ASSERT_TRUE(client.Request("s STATS", &response));
  EXPECT_EQ(response.rfind("s STATS ", 0), 0u) << response;
  for (const char* field :
       {"accepted=1", "submitted=1", "completed=1", "rejected=0",
        "cache_hits=0", "solved=1", "p50_ms=", "p99_ms="}) {
    EXPECT_NE(response.find(field), std::string::npos)
        << "missing " << field << " in: " << response;
  }
  EXPECT_EQ(server.LatencyPercentileMs(50.0) > 0.0, true);
}

TEST(TcpServer, PerQueryMvaOverrideDoesNotAliasInTheCache) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string exact, approx;
  ASSERT_TRUE(client.Request("a mb4 8 mva=exact", &exact));
  ASSERT_TRUE(client.Request("b mb4 8 mva=approx", &approx));
  // Same input, different solver options: two distinct solves, no aliasing.
  EXPECT_EQ(service.stats().solved, 2u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
  // And each repeats from its own cache entry.
  std::string exact2;
  ASSERT_TRUE(client.Request("c mb4 8 mva=exact", &exact2));
  EXPECT_EQ(exact2.substr(2), exact.substr(2));
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(TcpServer, ShutdownIsIdempotentAndSafeFromManyThreads) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&server] { server.Shutdown(); });
  }
  for (std::thread& t : threads) t.join();
  server.Shutdown();  // and once more after it has fully stopped
}

}  // namespace
}  // namespace carat
