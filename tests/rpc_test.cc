// Loopback integration tests for the network serving front-end (src/rpc):
// the epoll multi-reactor TcpServer, the per-connection framing negotiation
// (text and binary), the blocking Client, and the log-linear
// LatencyHistogram. Concurrency-sensitive paths (admission, deadlines,
// graceful drain, multi-client interleaving) are made deterministic with the
// same gate-the-pool trick serve_test uses: plug the worker pool with a
// blocking task so admitted requests sit in the dispatch queue until the
// test releases them.
//
// The CARAT_TEST_REACTORS environment variable (default 1) sets the reactor
// count for every test that does not pin its own — CI runs the suite at 1
// and at 4 so the whole protocol surface is exercised against both the
// single-reactor and the sharded front-end.
//
// Carries the `tsan` label (tests/CMakeLists.txt): reactor threads, pool
// workers and client threads all cross the per-reactor mutexes, so this
// suite is the ThreadSanitizer workout for the rpc layer.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "model/solver.h"
#include "rpc/client.h"
#include "rpc/framing.h"
#include "rpc/latency_histogram.h"
#include "rpc/message_server.h"
#include "rpc/tcp_server.h"
#include "serve/query.h"
#include "serve/solver_service.h"

namespace carat {
namespace {

std::size_t TestReactors() {
  const char* env = std::getenv("CARAT_TEST_REACTORS");
  if (env == nullptr) return 1;
  const long n = std::strtol(env, nullptr, 10);
  return n >= 1 ? static_cast<std::size_t>(n) : 1;
}

serve::SolverService::Options ServiceOptions(exec::ThreadPool* pool) {
  serve::SolverService::Options o;
  o.pool = pool;
  o.warm_start = false;  // cold solves are bit-identical across front-ends
  return o;
}

rpc::TcpServer::Options ServerOptions(serve::SolverService* service,
                                      exec::ThreadPool* pool) {
  rpc::TcpServer::Options o;
  o.service = service;
  o.pool = pool;
  o.reactors = TestReactors();
  return o;
}

void WaitForSubmitted(const rpc::TcpServer& server, std::uint64_t n) {
  while (server.stats().requests_submitted < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool ConnectTo(rpc::Client* client, const rpc::TcpServer& server,
               rpc::FramingKind framing = rpc::FramingKind::kText) {
  rpc::Client::ConnectOptions options;
  options.recv_timeout_ms = 30'000;
  options.connect_timeout_ms = 10'000;
  options.framing = framing;
  std::string error;
  const bool ok = client->Connect("127.0.0.1", server.port(), &error, options);
  EXPECT_TRUE(ok) << error;
  return ok;
}

/// Minimal blocking acceptor on an ephemeral loopback port, for driving the
/// client against misbehaving servers (drip-feeds, mid-response kills).
class RawServer {
 public:
  ~RawServer() { Close(); }

  bool Listen() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 1) != 0) {
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return false;
    }
    port_ = ntohs(bound.sin_port);
    return true;
  }

  int Accept() { return ::accept(fd_, nullptr, nullptr); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// ---- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, EmptyReportsZero) {
  rpc::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.PercentileMs(50.0), 0.0);
  EXPECT_EQ(h.PercentileMs(99.0), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  rpc::LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(3);  // < 8 us: exact buckets
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.PercentileMs(50.0), 0.003);
  EXPECT_DOUBLE_EQ(h.PercentileMs(100.0), 0.003);
}

TEST(LatencyHistogram, PercentilesBoundRelativeError) {
  rpc::LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(1'000);  // 1 ms
  h.Record(100'000);                             // one 100 ms outlier
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.PercentileMs(50.0);
  const double p99 = h.PercentileMs(99.0);
  const double p100 = h.PercentileMs(100.0);
  // Interpolated within the bucket: reported values stay inside the bucket
  // that holds the true value ([0.960, 1.023] ms and [98.304, 106.495] ms),
  // so the relative error is bounded by the bucket width (12.5%).
  EXPECT_GE(p50, 0.960);
  EXPECT_LE(p50, 1.023);
  EXPECT_GE(p99, 0.960);
  EXPECT_LE(p99, 1.023);  // rank 99 still falls in the 1 ms bucket
  EXPECT_GE(p100, 98.304);
  EXPECT_LE(p100, 106.495);
}

TEST(LatencyHistogram, InterpolationPinsKnownStreams) {
  // Regression for the upper-edge bias: a constant stream used to report
  // the bucket's inclusive upper edge (1.023 ms for 1000 us observations)
  // for every percentile. With midpoint interpolation observation k of c
  // sits at fraction (k - 0.5) / c of the bucket span [960, 1023].
  rpc::LatencyHistogram constant;
  for (int i = 0; i < 100; ++i) constant.Record(1'000);
  EXPECT_NEAR(constant.PercentileMs(50.0), 0.991185, 1e-9);   // not 1.023
  EXPECT_NEAR(constant.PercentileMs(99.0), 1.022055, 1e-9);
  EXPECT_LT(constant.PercentileMs(50.0), constant.PercentileMs(99.0));

  // A two-level stream: p99 lands on rank 99, the 9th of 10 observations
  // in the [3840, 4095] us bucket.
  rpc::LatencyHistogram mixed;
  for (int i = 0; i < 90; ++i) mixed.Record(1'000);
  for (int i = 0; i < 10; ++i) mixed.Record(4'000);
  EXPECT_NEAR(mixed.PercentileMs(99.0), 4.05675, 1e-9);
}

TEST(LatencyHistogram, OverflowIsCountedAndClamped) {
  rpc::LatencyHistogram h;
  h.Record(3'000'000'000'000);  // ~35 days in us: past the ~36 min tracked max
  h.Record(1'000);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_GT(h.PercentileMs(100.0), h.PercentileMs(1.0));
}

TEST(LatencyHistogram, HugeValuesClampIntoTheLastBucket) {
  rpc::LatencyHistogram h;
  h.Record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_GT(h.PercentileMs(50.0), 0.0);
}

TEST(LatencyHistogram, MergeAggregatesAcrossInstances) {
  rpc::LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1'000);
  for (int i = 0; i < 100; ++i) b.Record(1'000);
  b.Record(~std::uint64_t{0});
  a.Merge(b);
  EXPECT_EQ(a.count(), 201u);
  EXPECT_EQ(a.overflow_count(), 1u);
  // Merged percentiles read the combined distribution: rank 101 of 200 in
  // the [960, 1023] bucket.
  EXPECT_NEAR(a.PercentileMs(50.0), 0.9916575, 1e-9);
}

TEST(LatencyHistogram, ClearResets) {
  rpc::LatencyHistogram h;
  h.Record(1'000);
  h.Record(~std::uint64_t{0});
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.PercentileMs(50.0), 0.0);
}

// ---- TcpServer over loopback ----------------------------------------------

TEST(TcpServer, AnswersByteIdenticallyToTheSharedFormatter) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // The acceptance bar: the TCP front-end answers with exactly the bytes
  // carat_serve would print for the same query line.
  serve::Query query;
  model::ModelInput input;
  ASSERT_TRUE(serve::ParseQuery("mb4 6", &query, &input, &error)) << error;
  const model::ModelSolution direct = model::CaratModel(input).Solve();
  const std::string expected = "x " + serve::FormatResult(query, direct);

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string response;
  ASSERT_TRUE(client.Request("x mb4 6", &response));
  EXPECT_EQ(response, expected);

  // And a cache hit replays the identical bytes.
  ASSERT_TRUE(client.Request("y mb4 6", &response));
  EXPECT_EQ(response, "y " + serve::FormatResult(query, direct));
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(TcpServer, BinaryFramingAnswersByteIdenticalPayloads) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // One server, two framings, the same id-matched query stream: the
  // response payloads must be byte-identical (ids are decimal so they
  // round-trip through the binary u64 id field unchanged).
  rpc::Client text;
  rpc::Client binary;
  ASSERT_TRUE(ConnectTo(&text, server, rpc::FramingKind::kText));
  ASSERT_TRUE(ConnectTo(&binary, server, rpc::FramingKind::kBinary));
  const std::vector<std::string> queries = {
      "101 mb4 6", "102 mb4 12 what_if=mpl:10", "103 sweep 2:4", "104 bogus"};
  for (const std::string& q : queries) {
    std::string from_text, from_binary;
    ASSERT_TRUE(text.Request(q, &from_text)) << q;
    ASSERT_TRUE(binary.Request(q, &from_binary)) << q;
    EXPECT_EQ(from_text, from_binary) << q;
  }
  // STATS aside (counters move between the two requests), both connections
  // stay healthy afterwards.
  std::string response;
  ASSERT_TRUE(binary.Request("105 STATS", &response));
  EXPECT_EQ(response.rfind("105 STATS accepted=", 0), 0u) << response;
}

TEST(TcpServer, BinaryNegotiationRefusedWhenDisabled) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.enable_binary_framing = false;  // carat_served --framing=text
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A text-mode client sending the raw 0x00 hello sees a text ERROR and a
  // closed connection.
  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendRaw(std::string(1, rpc::kBinaryFramingByte)));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "? ERROR binary framing disabled");
  EXPECT_FALSE(client.ReadLine(&response));

  // Text connections are untouched by the strict mode.
  rpc::Client fresh;
  ASSERT_TRUE(ConnectTo(&fresh, server));
  ASSERT_TRUE(fresh.Request("a mb4 4", &response));
  EXPECT_EQ(response.rfind("a mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, MalformedBinaryFramesAnswerErrorAndClose) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.max_line_bytes = 64;
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A frame length below the 8-byte id minimum is malformed.
  {
    rpc::Client client;
    ASSERT_TRUE(ConnectTo(&client, server, rpc::FramingKind::kBinary));
    ASSERT_TRUE(client.SendRaw(std::string("\x03\x00\x00\x00", 4)));
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response));
    EXPECT_EQ(response, "0 ERROR binary frame length 3 < 8");
    EXPECT_FALSE(client.ReadLine(&response));
  }
  // A payload past max_line_bytes is oversized — rejected from the length
  // prefix alone, before the payload arrives.
  {
    rpc::Client client;
    ASSERT_TRUE(ConnectTo(&client, server, rpc::FramingKind::kBinary));
    ASSERT_TRUE(client.SendRaw(std::string("\xff\x00\x00\x00", 4)));
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response));
    EXPECT_EQ(response, "0 ERROR binary frame payload exceeds 64 bytes");
    EXPECT_FALSE(client.ReadLine(&response));
  }
  EXPECT_EQ(server.stats().frames_oversized, 2u);

  // A torn binary frame (EOF mid-frame) is discarded without an error.
  {
    rpc::Client client;
    ASSERT_TRUE(ConnectTo(&client, server, rpc::FramingKind::kBinary));
    std::string wire;
    rpc::Framing::Create(rpc::FramingKind::kBinary)->Encode("7", "mb4 4", &wire);
    ASSERT_TRUE(client.SendRaw(wire.substr(0, wire.size() - 2)));
    client.CloseSend();
    std::string response;
    EXPECT_FALSE(client.ReadLine(&response));  // no response, clean EOF
  }
  EXPECT_EQ(server.stats().frames_oversized, 2u);

  // The server is unharmed.
  rpc::Client fresh;
  ASSERT_TRUE(ConnectTo(&fresh, server, rpc::FramingKind::kBinary));
  std::string response;
  ASSERT_TRUE(fresh.Request("9 mb4 4", &response));
  EXPECT_EQ(response.rfind("9 mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, MultipleClientsInterleaveAndEveryRequestIsAnswered) {
  exec::ThreadPool pool(2);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::thread> threads;
  std::vector<int> answered(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, &server, &answered] {
      rpc::Client client;
      if (!ConnectTo(&client, server)) return;
      for (int i = 0; i < kPerClient; ++i) {
        // Pipeline all requests before reading any response.
        const int n = 2 + (c + i) % 5;
        client.SendLine("c" + std::to_string(c) + "." + std::to_string(i) +
                        " mb4 " + std::to_string(n));
      }
      std::string response;
      for (int i = 0; i < kPerClient; ++i) {
        if (!client.ReadLine(&response)) break;
        // Every response belongs to this client and reports a solution.
        EXPECT_EQ(response.rfind("c" + std::to_string(c) + ".", 0), 0u)
            << response;
        EXPECT_NE(response.find(",ok,"), std::string::npos) << response;
        ++answered[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(answered[c], kPerClient);
  const rpc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.requests_completed,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.requests_rejected, 0u);
}

TEST(TcpServer, AdmissionBoundAnswersBusyOutOfOrder) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.max_inflight = 1;
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Plug the single worker: request "a" is admitted but cannot start, so
  // "b" deterministically finds the admission queue full.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendLine("a mb4 4"));
  ASSERT_TRUE(client.SendLine("b mb4 4"));

  // BUSY comes back first even though "a" was sent first: responses are
  // written per-completion, not in request order.
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "b BUSY");
  release.set_value();
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response.rfind("a mb4,4,ok", 0), 0u) << response;

  const rpc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_submitted, 1u);
  EXPECT_EQ(stats.requests_rejected, 1u);
  EXPECT_EQ(stats.requests_completed, 1u);
}

TEST(TcpServer, ExpiredDeadlineAnswersTimeoutWithoutSolving) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendLine("a mb4 4 deadline_ms=1"));
  WaitForSubmitted(server, 1);
  // Let the deadline lapse while the request sits in the dispatch queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();

  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "a TIMEOUT");
  EXPECT_EQ(server.stats().requests_timed_out, 1u);
  EXPECT_EQ(server.stats().requests_completed, 0u);
  // The whole point of queue-time deadlines: no solver work was done.
  EXPECT_EQ(service.stats().submitted, 0u);
  EXPECT_EQ(service.stats().solved, 0u);
}

TEST(TcpServer, GracefulDrainAnswersEveryAdmittedRequest) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine("g" + std::to_string(i) + " mb4 " +
                                std::to_string(4 + i)));
  }
  WaitForSubmitted(server, kRequests);

  // Shutdown mid-batch: it must block until all three queued solves have
  // been answered and flushed, then close the connection.
  std::thread shutdown([&server] { server.Shutdown(); });
  release.set_value();
  shutdown.join();

  int got = 0;
  std::string response;
  while (client.ReadLine(&response)) {
    EXPECT_EQ(response.rfind("g", 0), 0u) << response;
    EXPECT_NE(response.find(",ok,"), std::string::npos) << response;
    ++got;
  }
  EXPECT_EQ(got, kRequests);  // then clean EOF
  EXPECT_EQ(server.stats().requests_completed,
            static_cast<std::uint64_t>(kRequests));

  // Drained means drained: the listener is gone.
  rpc::Client late;
  std::string late_error;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port(), &late_error));
}

TEST(TcpServer, DrainUnderBurstLoadAnswersEveryAdmittedRequest) {
  // The multi-reactor drain correctness bar: Shutdown while 64 clients are
  // mid-burst across 4 reactors must answer every admitted request (result,
  // BUSY or TIMEOUT — never silence) and then close every connection.
  exec::ThreadPool pool(2);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.reactors = 4;
  opts.max_inflight = 4096;  // sized above the offered window
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kClients = 64;
  constexpr int kPerClient = 4;
  // Plug the pool so every request is still in flight when the drain starts.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.Submit([gate] { gate.wait(); });
  pool.Submit([gate] { gate.wait(); });

  std::atomic<int> answered{0};
  std::atomic<int> read_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    const rpc::FramingKind framing = (c % 2) != 0 ? rpc::FramingKind::kBinary
                                                  : rpc::FramingKind::kText;
    threads.emplace_back([c, framing, &server, &answered, &read_failures] {
      rpc::Client client;
      if (!ConnectTo(&client, server, framing)) {
        read_failures.fetch_add(kPerClient);
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(c) * 100 + i + 1;
        client.SendLine(std::to_string(id) + " mb4 " +
                        std::to_string(2 + (c + i) % 5));
      }
      std::string response;
      int got = 0;
      while (got < kPerClient && client.ReadLine(&response)) {
        EXPECT_NE(response.find(' '), std::string::npos) << response;
        ++got;
      }
      answered.fetch_add(got);
      if (got < kPerClient) read_failures.fetch_add(kPerClient - got);
    });
  }

  WaitForSubmitted(server, kClients * kPerClient);
  std::thread shutdown([&server] { server.Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  release.set_value();
  shutdown.join();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(read_failures.load(), 0);
  const rpc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_submitted,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.requests_completed + stats.requests_timed_out,
            stats.requests_submitted);
  EXPECT_EQ(stats.active_connections, 0u);
}

TEST(TcpServer, SingleAcceptorFallbackSpreadsConnectionsRoundRobin) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.reactors = 3;
  opts.force_single_acceptor = true;
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_TRUE(server.single_acceptor());

  // Sequential connections with a round trip each: the handoff is
  // round-robin, so 6 connections land 2 on each of the 3 reactors.
  std::vector<rpc::Client> clients(6);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(ConnectTo(&clients[i], server));
    std::string response;
    ASSERT_TRUE(clients[i].Request(std::to_string(i) + " mb4 4", &response));
    EXPECT_NE(response.find(",ok,"), std::string::npos) << response;
  }
  const std::vector<rpc::ServerStats> per = server.ReactorStats();
  ASSERT_EQ(per.size(), 3u);
  for (std::size_t r = 0; r < per.size(); ++r) {
    EXPECT_EQ(per[r].connections_accepted, 2u) << "reactor " << r;
  }
  EXPECT_EQ(server.stats().connections_accepted, 6u);
}

TEST(TcpServer, OversizedFrameIsRejectedAndConnectionClosed) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.max_line_bytes = 64;
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendLine(std::string(100, 'x')));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "? ERROR line exceeds 64 bytes");
  EXPECT_FALSE(client.ReadLine(&response));  // server closed the connection
  EXPECT_EQ(server.stats().frames_oversized, 1u);

  // An unbounded partial line (no newline at all) is also rejected.
  rpc::Client partial;
  ASSERT_TRUE(ConnectTo(&partial, server));
  ASSERT_TRUE(partial.SendRaw(std::string(100, 'y')));
  ASSERT_TRUE(partial.ReadLine(&response));
  EXPECT_EQ(response, "? ERROR line exceeds 64 bytes");
  EXPECT_FALSE(partial.ReadLine(&response));
  EXPECT_EQ(server.stats().frames_oversized, 2u);

  // The server itself is unharmed.
  rpc::Client fresh;
  ASSERT_TRUE(ConnectTo(&fresh, server));
  ASSERT_TRUE(fresh.Request("a mb4 4", &response));
  EXPECT_EQ(response.rfind("a mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, TornFrameIsDiscardedWithoutAnError) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  ASSERT_TRUE(client.SendRaw("a mb4"));  // no terminating newline
  client.CloseSend();
  std::string response;
  EXPECT_FALSE(client.ReadLine(&response));  // discarded, no response, EOF

  EXPECT_EQ(server.stats().parse_errors, 0u);
  EXPECT_EQ(server.stats().requests_submitted, 0u);

  rpc::Client fresh;
  ASSERT_TRUE(ConnectTo(&fresh, server));
  ASSERT_TRUE(fresh.Request("b mb4 4", &response));
  EXPECT_EQ(response.rfind("b mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, MalformedRequestsAnswerErrorAndKeepTheConnection) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string response;
  ASSERT_TRUE(client.Request("a bogus 4", &response));
  EXPECT_EQ(response.rfind("a ERROR ", 0), 0u) << response;
  ASSERT_TRUE(client.Request("b mb4 4 deadline_ms=nope", &response));
  EXPECT_EQ(response.rfind("b ERROR ", 0), 0u) << response;
  EXPECT_EQ(server.stats().parse_errors, 2u);

  // Parse errors are per-request, not per-connection.
  ASSERT_TRUE(client.Request("c mb4 4", &response));
  EXPECT_EQ(response.rfind("c mb4,4,ok", 0), 0u) << response;
}

TEST(TcpServer, StatsVerbReportsLiveCountersWithReactorBreakdown) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer::Options opts = ServerOptions(&service, &pool);
  opts.reactors = 2;
  opts.force_single_acceptor = true;  // deterministic placement
  rpc::TcpServer server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string response;
  ASSERT_TRUE(client.Request("a mb4 4", &response));
  ASSERT_TRUE(client.Request("s STATS", &response));
  EXPECT_EQ(response.rfind("s STATS ", 0), 0u) << response;
  for (const char* field :
       {"accepted=1", "submitted=1", "completed=1", "rejected=0",
        "cache_hits=0", "solved=1", "p50_ms=", "p99_ms=", "reactors=2",
        "r0_active=", "r0_submitted=", "r1_completed="}) {
    EXPECT_NE(response.find(field), std::string::npos)
        << "missing " << field << " in: " << response;
  }
  EXPECT_EQ(server.LatencyPercentileMs(50.0) > 0.0, true);
}

TEST(TcpServer, PerQueryMvaOverrideDoesNotAliasInTheCache) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  rpc::Client client;
  ASSERT_TRUE(ConnectTo(&client, server));
  std::string exact, approx;
  ASSERT_TRUE(client.Request("a mb4 8 mva=exact", &exact));
  ASSERT_TRUE(client.Request("b mb4 8 mva=approx", &approx));
  // Same input, different solver options: two distinct solves, no aliasing.
  EXPECT_EQ(service.stats().solved, 2u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
  // And each repeats from its own cache entry.
  std::string exact2;
  ASSERT_TRUE(client.Request("c mb4 8 mva=exact", &exact2));
  EXPECT_EQ(exact2.substr(2), exact.substr(2));
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(TcpServer, ShutdownIsIdempotentAndSafeFromManyThreads) {
  exec::ThreadPool pool(1);
  serve::SolverService service(ServiceOptions(&pool));
  rpc::TcpServer server(ServerOptions(&service, &pool));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&server] { server.Shutdown(); });
  }
  for (std::thread& t : threads) t.join();
  server.Shutdown();  // and once more after it has fully stopped
}

// ---- Client robustness -----------------------------------------------------

TEST(Client, ReceiveDeadlineBoundsADripFeedingServer) {
  // Regression: a per-read SO_RCVTIMEO never fires against a server that
  // drips one byte per interval, so a wedged-but-trickling peer could hold
  // the client forever. The deadline is total, not per-read.
  RawServer raw;
  ASSERT_TRUE(raw.Listen());
  std::atomic<bool> stop{false};
  std::thread dripper([&raw, &stop] {
    const int fd = raw.Accept();
    if (fd < 0) return;
    while (!stop.load()) {
      if (::send(fd, "x", 1, MSG_NOSIGNAL) <= 0) break;  // never a newline
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::close(fd);
  });

  rpc::Client client;
  rpc::Client::ConnectOptions options;
  options.recv_timeout_ms = 150;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", raw.port(), &error, options))
      << error;
  const auto start = std::chrono::steady_clock::now();
  std::string line;
  EXPECT_FALSE(client.ReadLine(&line));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 100);
  EXPECT_LT(elapsed.count(), 5'000);  // bounded despite the steady drip
  stop.store(true);
  client.Close();
  dripper.join();
}

TEST(Client, ServerKilledMidResponseFailsTheReadInsteadOfHanging) {
  RawServer raw;
  ASSERT_TRUE(raw.Listen());
  std::thread killer([&raw] {
    const int fd = raw.Accept();
    if (fd < 0) return;
    char buf[256];
    [[maybe_unused]] const ssize_t n = ::read(fd, buf, sizeof(buf));
    // Half a response — no terminating newline — then a hard close.
    [[maybe_unused]] const ssize_t m =
        ::send(fd, "a mb4,8,ok", 10, MSG_NOSIGNAL);
    ::close(fd);
  });

  rpc::Client client;
  rpc::Client::ConnectOptions options;
  options.recv_timeout_ms = 5'000;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", raw.port(), &error, options))
      << error;
  std::string response;
  EXPECT_FALSE(client.Request("a mb4 8", &response));  // EOF mid-response
  killer.join();
}

TEST(Client, ConnectTimeoutFailsInsteadOfBlocking) {
  // A listener that never accepts, with its backlog saturated: the kernel
  // drops further SYNs, so an untimed connect would block through the full
  // SYN-retransmission schedule (minutes). The connect timeout must bound
  // it instead.
  RawServer raw;
  ASSERT_TRUE(raw.Listen());  // backlog 1, never accepted
  std::vector<int> plugs;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, SOCK_NONBLOCK);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(raw.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    plugs.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  rpc::Client client;
  rpc::Client::ConnectOptions options;
  options.connect_timeout_ms = 250;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  const bool connected = client.Connect("127.0.0.1", raw.port(), &error,
                                        options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Either the SYN is dropped and the timeout fires, or this kernel lets
  // the handshake finish anyway (some sandboxes do); what must never
  // happen is a multi-minute block on the SYN retransmission schedule.
  if (!connected) EXPECT_EQ(error, "connect: timed out");
  EXPECT_LT(elapsed.count(), 5'000);
  for (const int fd : plugs) ::close(fd);

  // And a refused connect reports the socket error through the same
  // nonblocking connect + SO_ERROR path instead of succeeding silently.
  RawServer closed;
  ASSERT_TRUE(closed.Listen());
  const std::uint16_t dead_port = closed.port();
  closed.Close();  // nothing listens here any more
  rpc::Client refused;
  error.clear();
  EXPECT_FALSE(refused.Connect("127.0.0.1", dead_port, &error, options));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(error.rfind("connect: ", 0), 0u) << error;
}

// ---- Client reconnect-with-backoff ----------------------------------------

TEST(Client, ReconnectBackoffSurvivesALateBindingListener) {
  // Reserve a port, free it, and only re-listen after a delay: a
  // single-attempt connect must fail, a budgeted one must land once the
  // listener appears (the carat_sited spawn pattern — the coordinator's
  // children race it to their listen sockets).
  RawServer probe;
  ASSERT_TRUE(probe.Listen());
  const std::uint16_t port = probe.port();
  probe.Close();

  rpc::Client::ConnectOptions one;
  one.connect_timeout_ms = 250;
  one.connect_attempts = 1;
  std::string error;
  rpc::Client fail_fast;
  EXPECT_FALSE(fail_fast.Connect("127.0.0.1", port, &error, one));

  std::unique_ptr<rpc::MessageServer> late;
  std::thread binder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    rpc::MessageServer::Options mopts;
    mopts.port = port;
    late = std::make_unique<rpc::MessageServer>(
        mopts, [](const rpc::MessageServer::ConnectionPtr& conn,
                  const std::string& id, const std::string& body) {
          conn->Send(id, "echo " + body);
        });
    std::string bind_error;
    ASSERT_TRUE(late->Start(&bind_error)) << bind_error;
  });

  rpc::Client::ConnectOptions patient;
  patient.connect_timeout_ms = 250;
  patient.connect_attempts = 40;
  patient.reconnect_backoff_ms = 50;
  patient.recv_timeout_ms = 5'000;
  patient.framing = rpc::FramingKind::kBinary;
  rpc::Client client;
  EXPECT_TRUE(client.Connect("127.0.0.1", port, &error, patient)) << error;
  binder.join();

  ASSERT_TRUE(client.SendLine("7 ping"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "7 echo ping");
  late->Shutdown();
}

// ---- MessageServer (peer-to-peer framed push) ------------------------------

TEST(MessageServer, SurfacesEphemeralPortAndPushesBothWays) {
  rpc::MessageServer::ConnectionPtr peer;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> got;
  rpc::MessageServer server(
      rpc::MessageServer::Options{},  // port 0: kernel-assigned
      [&](const rpc::MessageServer::ConnectionPtr& conn, const std::string& id,
          const std::string& body) {
        std::lock_guard<std::mutex> lock(mu);
        peer = conn;
        got.push_back(id + "|" + body);
        cv.notify_all();
      });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);  // the ephemeral pick is visible

  rpc::Client::ConnectOptions copts;
  copts.framing = rpc::FramingKind::kBinary;
  copts.recv_timeout_ms = 5'000;
  rpc::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error, copts));
  ASSERT_TRUE(client.SendLine("3 REMDO 42"));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return !got.empty(); }));
    EXPECT_EQ(got[0], "3|REMDO 42");
  }
  // Server-initiated push on the retained connection handle: the pattern
  // site daemons use for unsolicited mesh traffic.
  ASSERT_TRUE(peer->Send("0", "PROBE 1 0 2"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "0 PROBE 1 0 2");
  server.Shutdown();
}

// ---- LatencyHistogram::Merge edge cases ------------------------------------

TEST(LatencyHistogram, MergeWithEmptyIsIdentityBothWays) {
  rpc::LatencyHistogram populated, empty;
  for (int i = 0; i < 50; ++i) populated.Record(1'000);
  const double p50 = populated.PercentileMs(50.0);

  populated.Merge(empty);  // empty into populated: a no-op
  EXPECT_EQ(populated.count(), 50u);
  EXPECT_EQ(populated.PercentileMs(50.0), p50);

  rpc::LatencyHistogram target;
  target.Merge(populated);  // populated into empty: exact copy
  EXPECT_EQ(target.count(), 50u);
  EXPECT_EQ(target.overflow_count(), 0u);
  EXPECT_EQ(target.PercentileMs(50.0), p50);

  rpc::LatencyHistogram both;
  both.Merge(rpc::LatencyHistogram{});  // empty into empty
  EXPECT_EQ(both.count(), 0u);
  EXPECT_EQ(both.PercentileMs(99.0), 0.0);
}

TEST(LatencyHistogram, MergeAddsOverflowBucketsAcrossInstances) {
  rpc::LatencyHistogram a, b;
  a.Record(~std::uint64_t{0});
  a.Record(3'000'000'000'000);
  b.Record(~std::uint64_t{0});
  for (int i = 0; i < 7; ++i) b.Record(2'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_EQ(a.overflow_count(), 3u);  // 2 + 1, kept distinct from the counts
  // The clamped tail stays in the distribution: the top percentile reads
  // the last bucket, the median the 2 ms cluster.
  EXPECT_GT(a.PercentileMs(99.0), 1'000'000.0);
  EXPECT_LT(a.PercentileMs(50.0), 10.0);
}

}  // namespace
}  // namespace carat
