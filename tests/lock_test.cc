#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lock/lock_manager.h"
#include "sim/process.h"
#include "sim/simulation.h"

namespace carat::lock {
namespace {

struct Outcome {
  bool resumed = false;
  LockOutcome result = LockOutcome::kGranted;
};

sim::Process AcquireOne(LockManager& lm, TxnId txn, db::GranuleId g,
                        LockMode mode, Outcome* out) {
  out->result = co_await lm.Acquire(txn, g, mode);
  out->resumed = true;
}

class LockTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  LockManager lm_{sim_};

  void Start(TxnId t) { lm_.StartTxn(t); }
  void Drain() { sim_.RunUntil(sim_.now() + 1.0); }
};

TEST_F(LockTest, SharedLocksCoexist) {
  Start(1);
  Start(2);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kShared, &a);
  AcquireOne(lm_, 2, 7, LockMode::kShared, &b);
  Drain();
  EXPECT_TRUE(a.resumed);
  EXPECT_TRUE(b.resumed);
  EXPECT_EQ(a.result, LockOutcome::kGranted);
  EXPECT_EQ(b.result, LockOutcome::kGranted);
  EXPECT_EQ(lm_.TotalHeld(), 2u);
}

TEST_F(LockTest, ExclusiveBlocksShared) {
  Start(1);
  Start(2);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &a);
  AcquireOne(lm_, 2, 7, LockMode::kShared, &b);
  Drain();
  EXPECT_TRUE(a.resumed);
  EXPECT_FALSE(b.resumed);
  EXPECT_TRUE(lm_.IsWaiting(2));
  // Release unblocks the waiter.
  lm_.ReleaseAll(1);
  Drain();
  EXPECT_TRUE(b.resumed);
  EXPECT_EQ(b.result, LockOutcome::kGranted);
}

TEST_F(LockTest, SharedBlocksExclusive) {
  Start(1);
  Start(2);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kShared, &a);
  AcquireOne(lm_, 2, 7, LockMode::kExclusive, &b);
  Drain();
  EXPECT_TRUE(a.resumed);
  EXPECT_FALSE(b.resumed);
}

TEST_F(LockTest, ReentrantGrantsDoNotDoubleCount) {
  Start(1);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &a);
  AcquireOne(lm_, 1, 7, LockMode::kShared, &b);  // weaker re-request
  Drain();
  EXPECT_TRUE(a.resumed);
  EXPECT_TRUE(b.resumed);
  EXPECT_EQ(lm_.HeldCount(1), 1u);
  EXPECT_EQ(lm_.TotalHeld(), 1u);
}

TEST_F(LockTest, UpgradeSucceedsWhenSoleHolder) {
  Start(1);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kShared, &a);
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &b);
  Drain();
  EXPECT_TRUE(b.resumed);
  EXPECT_TRUE(lm_.Holds(1, 7, LockMode::kExclusive));
  EXPECT_EQ(lm_.HeldCount(1), 1u);
}

TEST_F(LockTest, FifoFairnessNewRequestsQueueBehindWaiters) {
  Start(1);
  Start(2);
  Start(3);
  Outcome a, b, c;
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &a);
  AcquireOne(lm_, 2, 7, LockMode::kExclusive, &b);
  // Txn 3 asks for shared: compatible with nobody while 2 queues ahead.
  AcquireOne(lm_, 3, 7, LockMode::kShared, &c);
  Drain();
  EXPECT_FALSE(b.resumed);
  EXPECT_FALSE(c.resumed);
  lm_.ReleaseAll(1);
  Drain();
  EXPECT_TRUE(b.resumed);   // 2 got it first (FIFO)
  EXPECT_FALSE(c.resumed);  // 3 still waits behind 2
  lm_.ReleaseAll(2);
  Drain();
  EXPECT_TRUE(c.resumed);
  lm_.ReleaseAll(3);
}

TEST_F(LockTest, TwoCycleDeadlockAbortsRequester) {
  Start(1);
  Start(2);
  Outcome a1, a2, b1, b2;
  AcquireOne(lm_, 1, 10, LockMode::kExclusive, &a1);
  AcquireOne(lm_, 2, 20, LockMode::kExclusive, &a2);
  Drain();
  AcquireOne(lm_, 1, 20, LockMode::kExclusive, &b1);  // 1 waits for 2
  Drain();
  EXPECT_FALSE(b1.resumed);
  AcquireOne(lm_, 2, 10, LockMode::kExclusive, &b2);  // closes the cycle
  Drain();
  EXPECT_TRUE(b2.resumed);
  EXPECT_EQ(b2.result, LockOutcome::kAborted);  // requester is the victim
  EXPECT_EQ(lm_.local_deadlocks(), 1u);
  // Victim's rollback releases its locks; the other waiter proceeds.
  lm_.ReleaseAll(2);
  Drain();
  EXPECT_TRUE(b1.resumed);
  EXPECT_EQ(b1.result, LockOutcome::kGranted);
}

TEST_F(LockTest, ThreeCycleDeadlockIsDetected) {
  for (TxnId t : {1, 2, 3}) Start(t);
  Outcome held[3], waits[3];
  AcquireOne(lm_, 1, 10, LockMode::kExclusive, &held[0]);
  AcquireOne(lm_, 2, 20, LockMode::kExclusive, &held[1]);
  AcquireOne(lm_, 3, 30, LockMode::kExclusive, &held[2]);
  Drain();
  AcquireOne(lm_, 1, 20, LockMode::kExclusive, &waits[0]);  // 1 -> 2
  AcquireOne(lm_, 2, 30, LockMode::kExclusive, &waits[1]);  // 2 -> 3
  Drain();
  AcquireOne(lm_, 3, 10, LockMode::kExclusive, &waits[2]);  // 3 -> 1: cycle
  Drain();
  EXPECT_TRUE(waits[2].resumed);
  EXPECT_EQ(waits[2].result, LockOutcome::kAborted);
  EXPECT_EQ(lm_.local_deadlocks(), 1u);
}

TEST_F(LockTest, SharedSharedNeverDeadlocks) {
  Start(1);
  Start(2);
  Outcome a, b, c, d;
  AcquireOne(lm_, 1, 10, LockMode::kShared, &a);
  AcquireOne(lm_, 2, 20, LockMode::kShared, &b);
  AcquireOne(lm_, 1, 20, LockMode::kShared, &c);
  AcquireOne(lm_, 2, 10, LockMode::kShared, &d);
  Drain();
  EXPECT_TRUE(c.resumed);
  EXPECT_TRUE(d.resumed);
  EXPECT_EQ(lm_.local_deadlocks(), 0u);
}

TEST_F(LockTest, YoungestVictimPolicyAbortsYoungerWaiter) {
  lm_.set_victim_policy(VictimPolicy::kYoungest);
  Start(1);  // older
  sim_.RunUntil(sim_.now() + 10.0);
  Start(2);  // younger
  Outcome a1, a2, w1, w2;
  AcquireOne(lm_, 1, 10, LockMode::kExclusive, &a1);
  AcquireOne(lm_, 2, 20, LockMode::kExclusive, &a2);
  Drain();
  AcquireOne(lm_, 2, 10, LockMode::kExclusive, &w2);  // younger waits first
  Drain();
  AcquireOne(lm_, 1, 20, LockMode::kExclusive, &w1);  // older closes cycle
  Drain();
  // The younger waiter (txn 2) dies; the older requester proceeds to wait
  // and is then granted once 2 releases.
  EXPECT_TRUE(w2.resumed);
  EXPECT_EQ(w2.result, LockOutcome::kAborted);
  lm_.ReleaseAll(2);
  Drain();
  EXPECT_TRUE(w1.resumed);
  EXPECT_EQ(w1.result, LockOutcome::kGranted);
}

TEST_F(LockTest, CancelWaitResumesWithAbort) {
  Start(1);
  Start(2);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &a);
  AcquireOne(lm_, 2, 7, LockMode::kExclusive, &b);
  Drain();
  EXPECT_TRUE(lm_.CancelWait(2));
  Drain();
  EXPECT_TRUE(b.resumed);
  EXPECT_EQ(b.result, LockOutcome::kAborted);
  EXPECT_FALSE(lm_.IsWaiting(2));
  EXPECT_FALSE(lm_.CancelWait(2));  // idempotent
}

TEST_F(LockTest, WaitingForReportsConflictingHoldersAndWaiters) {
  for (TxnId t : {1, 2, 3}) Start(t);
  Outcome a, b, c;
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &a);
  AcquireOne(lm_, 2, 7, LockMode::kExclusive, &b);
  AcquireOne(lm_, 3, 7, LockMode::kExclusive, &c);
  Drain();
  const auto w2 = lm_.WaitingFor(2);
  ASSERT_EQ(w2.size(), 1u);
  EXPECT_EQ(w2[0], 1u);
  const auto w3 = lm_.WaitingFor(3);  // waits for the holder and txn 2
  EXPECT_EQ(w3.size(), 2u);
}

TEST_F(LockTest, HooksFireOnBlockAndUnblock) {
  Start(1);
  Start(2);
  std::vector<std::string> events;
  lm_.on_block = [&](TxnId t, const std::vector<TxnId>& holders) {
    events.push_back("block " + std::to_string(t) + " on " +
                     std::to_string(holders.at(0)));
  };
  lm_.on_unblock = [&](TxnId t) {
    events.push_back("unblock " + std::to_string(t));
  };
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &a);
  AcquireOne(lm_, 2, 7, LockMode::kExclusive, &b);
  Drain();
  lm_.ReleaseAll(1);
  Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "block 2 on 1");
  EXPECT_EQ(events[1], "unblock 2");
}

TEST_F(LockTest, ReleaseAllClearsTableEntries) {
  Start(1);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kShared, &a);
  AcquireOne(lm_, 1, 8, LockMode::kExclusive, &b);
  Drain();
  EXPECT_EQ(lm_.HeldCount(1), 2u);
  lm_.ReleaseAll(1);
  EXPECT_EQ(lm_.HeldCount(1), 0u);
  EXPECT_EQ(lm_.TotalHeld(), 0u);
  lm_.EndTxn(1);
}

TEST_F(LockTest, StatsCountRequestsAndBlocks) {
  Start(1);
  Start(2);
  Outcome a, b;
  AcquireOne(lm_, 1, 7, LockMode::kExclusive, &a);
  AcquireOne(lm_, 2, 7, LockMode::kExclusive, &b);
  Drain();
  EXPECT_EQ(lm_.requests(), 2u);
  EXPECT_EQ(lm_.blocks(), 1u);
  lm_.ResetStats();
  EXPECT_EQ(lm_.requests(), 0u);
}

}  // namespace
}  // namespace carat::lock
