// Direct tests of the Chandy-Misra-Haas-style probe detector: build two
// nodes, drive two distributed transactions into a textbook cross-site
// deadlock, and watch the probes break it.
//
// The test transactions follow the sharded kernel's site discipline: every
// lock table and registry is touched only from its own site's timeline, and
// moves between sites are explicit network hops (with the coordinator's
// current-node pointer updated at the home site before departing), exactly
// as the testbed's drivers do.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "txn/node.h"
#include "txn/probes.h"
#include "txn/registry.h"

namespace carat::txn {
namespace {

struct Harness {
  sim::ShardedKernel kernel;
  net::Network network;
  TxnRegistrySet registry;
  std::vector<std::unique_ptr<Node>> nodes;
  std::unique_ptr<GlobalDeadlockDetector> detector;

  explicit Harness(int num_nodes = 2)
      : kernel(num_nodes, /*num_shards=*/1, /*lookahead_ms=*/1.0),
        network(kernel, /*one_way_delay_ms=*/1.0),
        registry(num_nodes) {
    for (int i = 0; i < num_nodes; ++i) {
      model::SiteParams params;
      params.name = "N" + std::to_string(i);
      params.num_granules = 100;
      params.records_per_granule = 6;
      params.block_io_ms = 10.0;
      nodes.push_back(std::make_unique<Node>(sim::SitePort{&kernel, i}, i,
                                             params));
    }
    std::vector<Node*> ptrs;
    for (auto& n : nodes) ptrs.push_back(n.get());
    GlobalDeadlockDetector::Options options;
    options.reprobe_interval_ms = 20.0;
    detector = std::make_unique<GlobalDeadlockDetector>(kernel, network,
                                                        registry, ptrs,
                                                        options);
    for (int i = 0; i < num_nodes; ++i) {
      nodes[i]->locks().on_block = [this, i](
          GlobalTxnId w, const std::vector<GlobalTxnId>& h) {
        detector->OnBlock(i, w, h);
      };
    }
  }

  GlobalTxnId NewTxn(model::TxnType type, int home) {
    return registry.at(home).NewTxn(type);
  }
};

struct TxnState {
  bool aborted = false;
  bool finished = false;
};

// Acquires X on (first_node, first_granule), waits, then X on
// (second_node, second_granule). Rolls back everywhere on abort. The gid
// must be homed at first_node so the probe detector's home-registry lookup
// finds its current node.
sim::Process CrossSiteTxn(Harness& h, GlobalTxnId gid, int first_node,
                          db::GranuleId first_granule, int second_node,
                          db::GranuleId second_granule, TxnState* out) {
  co_await h.network.Hop(first_node);
  h.nodes[first_node]->locks().StartTxn(gid);
  auto r1 = co_await h.nodes[first_node]->locks().Acquire(
      gid, first_granule, lock::LockMode::kExclusive);
  EXPECT_EQ(r1, lock::LockOutcome::kGranted);
  co_await sim::Delay{sim::SitePort{&h.kernel, first_node}, 5.0};
  if (second_node != first_node) {
    h.registry.at(first_node).SetCurrentNode(gid, second_node);
    co_await h.network.Hop(second_node);
    h.nodes[second_node]->locks().StartTxn(gid);
  }
  auto r2 = co_await h.nodes[second_node]->locks().Acquire(
      gid, second_granule, lock::LockMode::kExclusive);
  out->aborted = (r2 == lock::LockOutcome::kAborted);
  h.nodes[second_node]->locks().ReleaseAll(gid);
  if (second_node != first_node) {
    co_await h.network.Hop(first_node);
    h.registry.at(first_node).SetCurrentNode(gid, first_node);
  }
  h.nodes[first_node]->locks().ReleaseAll(gid);
  out->finished = true;
}

TEST(Probes, BreaksTwoCycleGlobalDeadlock) {
  Harness h;
  const GlobalTxnId t1 = h.NewTxn(model::TxnType::kDUC, 0);
  const GlobalTxnId t2 = h.NewTxn(model::TxnType::kDUC, 1);
  TxnState s1, s2;
  // T1: lock 5@0 then 7@1. T2: lock 7@1... T2 takes 7@1 then 5@0.
  CrossSiteTxn(h, t1, 0, 5, 1, 7, &s1);
  CrossSiteTxn(h, t2, 1, 7, 0, 5, &s2);
  h.kernel.RunUntil(5'000.0);
  EXPECT_TRUE(s1.finished);
  EXPECT_TRUE(s2.finished);
  // Exactly one is the probe's victim; the other completes.
  EXPECT_NE(s1.aborted, s2.aborted);
  EXPECT_EQ(h.detector->global_deadlocks(), 1u);
  EXPECT_GT(h.detector->probes_sent(), 0u);
}

TEST(Probes, NoFalsePositivesWithoutCycle) {
  Harness h;
  const GlobalTxnId t1 = h.NewTxn(model::TxnType::kDUC, 0);
  const GlobalTxnId t2 = h.NewTxn(model::TxnType::kDUC, 1);
  TxnState s1, s2;
  // T1: 5@0 then 7@1. T2: 7@1 then 9@0 (no cycle, just a wait).
  CrossSiteTxn(h, t1, 0, 5, 1, 7, &s1);
  CrossSiteTxn(h, t2, 1, 7, 0, 9, &s2);
  h.kernel.RunUntil(5'000.0);
  EXPECT_TRUE(s1.finished);
  EXPECT_TRUE(s2.finished);
  EXPECT_FALSE(s1.aborted);
  EXPECT_FALSE(s2.aborted);
  EXPECT_EQ(h.detector->global_deadlocks(), 0u);
}

TEST(Probes, LocalHoldersDoNotTriggerProbes) {
  Harness h;
  const GlobalTxnId local = h.NewTxn(model::TxnType::kLU, 0);
  const GlobalTxnId waiter = h.NewTxn(model::TxnType::kLU, 0);
  TxnState s1, s2;
  CrossSiteTxn(h, local, 0, 5, 0, 6, &s1);
  CrossSiteTxn(h, waiter, 0, 6, 0, 7, &s2);  // waits on `local`, no cycle
  h.kernel.RunUntil(1'000.0);
  EXPECT_EQ(h.detector->probes_sent(), 0u);
  EXPECT_EQ(h.detector->global_deadlocks(), 0u);
}

TEST(Probes, WatchdogCatchesRacedCycle) {
  // Force the race: disable the immediate on_block probes so only the
  // watchdog can find the cycle.
  Harness h;
  for (auto& node : h.nodes) {
    node->locks().on_block = [](GlobalTxnId,
                                const std::vector<GlobalTxnId>&) {};
  }
  h.detector->StartWatchdogs();
  const GlobalTxnId t1 = h.NewTxn(model::TxnType::kDUC, 0);
  const GlobalTxnId t2 = h.NewTxn(model::TxnType::kDUC, 1);
  TxnState s1, s2;
  CrossSiteTxn(h, t1, 0, 5, 1, 7, &s1);
  CrossSiteTxn(h, t2, 1, 7, 0, 5, &s2);
  h.kernel.RunUntil(5'000.0);
  EXPECT_TRUE(s1.finished);
  EXPECT_TRUE(s2.finished);
  EXPECT_NE(s1.aborted, s2.aborted);
  EXPECT_EQ(h.detector->global_deadlocks(), 1u);
}

TEST(Probes, ThreeNodeThreeCycleIsDetected) {
  Harness h(3);
  const GlobalTxnId t1 = h.NewTxn(model::TxnType::kDUC, 0);
  const GlobalTxnId t2 = h.NewTxn(model::TxnType::kDUC, 1);
  const GlobalTxnId t3 = h.NewTxn(model::TxnType::kDUC, 2);
  TxnState s1, s2, s3;
  // T1: 1@0 then 2@1; T2: 2@1 then 3@2; T3: 3@2 then 1@0.
  CrossSiteTxn(h, t1, 0, 1, 1, 2, &s1);
  CrossSiteTxn(h, t2, 1, 2, 2, 3, &s2);
  CrossSiteTxn(h, t3, 2, 3, 0, 1, &s3);
  h.kernel.RunUntil(10'000.0);
  EXPECT_TRUE(s1.finished);
  EXPECT_TRUE(s2.finished);
  EXPECT_TRUE(s3.finished);
  const int aborted = s1.aborted + s2.aborted + s3.aborted;
  EXPECT_EQ(aborted, 1);  // one victim suffices to break a 3-cycle
  EXPECT_GE(h.detector->global_deadlocks(), 1u);
}

}  // namespace
}  // namespace carat::txn
