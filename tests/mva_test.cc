#include <gtest/gtest.h>

#include <cmath>

#include "qn/bounds.h"
#include "qn/ethernet.h"
#include "qn/mva.h"
#include "qn/network.h"
#include "util/random.h"

namespace carat::qn {
namespace {

// Single-chain machine-repairman (M/M/1//N with think time): closed-form
// check via the recursive MVA identity computed independently here.
double MachineRepairmanThroughput(int population, double demand, double think) {
  double q = 0.0, x = 0.0;
  for (int n = 1; n <= population; ++n) {
    const double r = demand * (1.0 + q);
    x = n / (think + r);
    q = x * r;
  }
  return x;
}

TEST(ExactMva, MatchesMachineRepairman) {
  for (int pop : {1, 2, 5, 20}) {
    ClosedNetwork net;
    const std::size_t c = net.AddCenter("cpu", CenterKind::kQueueing);
    const std::size_t k = net.AddChain("jobs", pop, /*think_time=*/50.0);
    net.chains[k].demands[c] = 10.0;
    MvaResult res = ExactMva(net);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_NEAR(res.solution.throughput[k],
                MachineRepairmanThroughput(pop, 10.0, 50.0), 1e-12);
  }
}

TEST(ExactMva, DelayOnlyNetworkIsPopulationOverDemand) {
  ClosedNetwork net;
  const std::size_t d = net.AddCenter("delay", CenterKind::kDelay);
  const std::size_t k = net.AddChain("jobs", 7, 3.0);
  net.chains[k].demands[d] = 11.0;
  MvaResult res = ExactMva(net);
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.solution.throughput[k], 7.0 / (3.0 + 11.0), 1e-12);
  EXPECT_NEAR(res.solution.response_time[k], 11.0, 1e-12);
}

TEST(ExactMva, SingleCustomerSeesNoQueueing) {
  // With population 1 the response time is just the total demand.
  ClosedNetwork net;
  const std::size_t c1 = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t c2 = net.AddCenter("disk", CenterKind::kQueueing);
  const std::size_t k = net.AddChain("jobs", 1, 0.0);
  net.chains[k].demands[c1] = 4.0;
  net.chains[k].demands[c2] = 6.0;
  MvaResult res = ExactMva(net);
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.solution.response_time[k], 10.0, 1e-12);
  EXPECT_NEAR(res.solution.throughput[k], 0.1, 1e-12);
}

TEST(ExactMva, UtilizationLawHolds) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t disk = net.AddCenter("disk", CenterKind::kQueueing);
  const std::size_t a = net.AddChain("a", 3, 10.0);
  const std::size_t b = net.AddChain("b", 2, 5.0);
  net.chains[a].demands[cpu] = 2.0;
  net.chains[a].demands[disk] = 8.0;
  net.chains[b].demands[cpu] = 5.0;
  net.chains[b].demands[disk] = 1.0;
  MvaResult res = ExactMva(net);
  ASSERT_TRUE(res.ok);
  const auto& s = res.solution;
  EXPECT_NEAR(s.utilization[cpu],
              s.throughput[a] * 2.0 + s.throughput[b] * 5.0, 1e-12);
  EXPECT_NEAR(s.utilization[disk],
              s.throughput[a] * 8.0 + s.throughput[b] * 1.0, 1e-12);
  EXPECT_LE(s.utilization[cpu], 1.0 + 1e-12);
  EXPECT_LE(s.utilization[disk], 1.0 + 1e-12);
}

TEST(ExactMva, LittleLawAtEachCenter) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t dly = net.AddCenter("dly", CenterKind::kDelay);
  const std::size_t a = net.AddChain("a", 4, 0.0);
  const std::size_t b = net.AddChain("b", 3, 2.0);
  net.chains[a].demands[cpu] = 3.0;
  net.chains[a].demands[dly] = 7.0;
  net.chains[b].demands[cpu] = 1.0;
  net.chains[b].demands[dly] = 4.0;
  MvaResult res = ExactMva(net);
  ASSERT_TRUE(res.ok);
  const auto& s = res.solution;
  for (std::size_t m = 0; m < net.centers.size(); ++m) {
    double expect = 0.0;
    for (std::size_t k = 0; k < net.chains.size(); ++k)
      expect += s.throughput[k] * s.residence[k][m];
    EXPECT_NEAR(s.queue_length[m], expect, 1e-12);
  }
  // Total customers in network + in think must equal the populations.
  double total = 0.0;
  for (std::size_t m = 0; m < net.centers.size(); ++m)
    total += s.queue_length[m];
  total += s.throughput[a] * net.chains[a].think_time;
  total += s.throughput[b] * net.chains[b].think_time;
  EXPECT_NEAR(total, 7.0, 1e-9);
}

TEST(ExactMva, ThroughputMonotonicInPopulation) {
  double prev = 0.0;
  for (int pop = 1; pop <= 12; ++pop) {
    ClosedNetwork net;
    const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
    const std::size_t disk = net.AddCenter("disk", CenterKind::kQueueing);
    const std::size_t k = net.AddChain("jobs", pop, 4.0);
    net.chains[k].demands[cpu] = 2.0;
    net.chains[k].demands[disk] = 3.0;
    MvaResult res = ExactMva(net);
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.solution.throughput[k], prev);
    // Bounded by the bottleneck: X <= 1 / D_max.
    EXPECT_LE(res.solution.throughput[k], 1.0 / 3.0 + 1e-12);
    prev = res.solution.throughput[k];
  }
}

TEST(ExactMva, ZeroPopulationChainContributesNothing) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t a = net.AddChain("a", 0, 0.0);
  const std::size_t b = net.AddChain("b", 2, 1.0);
  net.chains[a].demands[cpu] = 100.0;
  net.chains[b].demands[cpu] = 2.0;
  MvaResult res = ExactMva(net);
  ASSERT_TRUE(res.ok);
  EXPECT_DOUBLE_EQ(res.solution.throughput[a], 0.0);
  EXPECT_GT(res.solution.throughput[b], 0.0);
}

TEST(ExactMva, RejectsOversizedLattice) {
  ClosedNetwork net;
  net.AddCenter("cpu", CenterKind::kQueueing);
  for (int k = 0; k < 12; ++k) {
    const std::size_t c = net.AddChain("k", 9, 0.0);
    net.chains[c].demands[0] = 1.0;
  }
  MvaResult res = ExactMva(net, /*max_states=*/1000);
  EXPECT_FALSE(res.ok);
}

TEST(SchweitzerMva, CloseToExactOnMultichainNetwork) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t disk = net.AddCenter("disk", CenterKind::kQueueing);
  const std::size_t a = net.AddChain("a", 6, 10.0);
  const std::size_t b = net.AddChain("b", 4, 20.0);
  net.chains[a].demands[cpu] = 3.0;
  net.chains[a].demands[disk] = 5.0;
  net.chains[b].demands[cpu] = 6.0;
  net.chains[b].demands[disk] = 2.0;
  MvaResult exact = ExactMva(net);
  MvaResult approx = SchweitzerMva(net);
  ASSERT_TRUE(exact.ok);
  ASSERT_TRUE(approx.ok);
  for (std::size_t k = 0; k < net.chains.size(); ++k) {
    EXPECT_NEAR(approx.solution.throughput[k], exact.solution.throughput[k],
                0.05 * exact.solution.throughput[k]);
  }
}

// A contended multi-chain network in the Schweitzer regime: large enough
// populations that the fixed point takes a meaningful number of iterations.
ClosedNetwork MakeContendedNetwork(int population) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t disk = net.AddCenter("disk", CenterKind::kQueueing);
  const std::size_t log = net.AddCenter("log", CenterKind::kQueueing);
  const double demands[4][3] = {
      {3.0, 5.0, 1.0}, {6.0, 2.0, 2.5}, {1.5, 7.5, 0.5}, {4.0, 4.0, 3.0}};
  for (int k = 0; k < 4; ++k) {
    const std::size_t c =
        net.AddChain("k" + std::to_string(k), population, 25.0 * (k + 1));
    net.chains[c].demands[cpu] = demands[k][0];
    net.chains[c].demands[disk] = demands[k][1];
    net.chains[c].demands[log] = demands[k][2];
  }
  return net;
}

TEST(SchweitzerMva, InitialQkmWarmStartReachesSameFixedPointFaster) {
  const ClosedNetwork net = MakeContendedNetwork(/*population=*/32);

  // Cold solve through the workspace API, which retains the converged
  // per-(chain, center) queue lengths.
  MvaWorkspace ws;
  ASSERT_TRUE(SchweitzerMvaInPlace(net, &ws));
  const MvaResult cold = SchweitzerMva(net);
  ASSERT_TRUE(cold.ok);
  ASSERT_GT(cold.iterations, 3);  // the warm start must have room to help

  // Re-solving seeded with the converged queue lengths must land on the
  // same fixed point in strictly fewer iterations.
  const std::vector<double> converged_qkm = ws.qkm;
  const MvaResult warm = SchweitzerMva(net, /*tolerance=*/1e-9,
                                       /*max_iterations=*/10000,
                                       &converged_qkm);
  ASSERT_TRUE(warm.ok);
  EXPECT_LT(warm.iterations, cold.iterations);
  for (std::size_t k = 0; k < net.chains.size(); ++k) {
    EXPECT_NEAR(warm.solution.throughput[k], cold.solution.throughput[k],
                1e-7 * cold.solution.throughput[k]);
    EXPECT_NEAR(warm.solution.response_time[k], cold.solution.response_time[k],
                1e-6 * cold.solution.response_time[k]);
  }
}

TEST(SchweitzerMva, NeighborQkmSeedHelpsAcrossParameterPoints) {
  // Seed population-34's solve with population-32's converged state — the
  // cross-sweep-point pattern the serving layer uses.
  MvaWorkspace ws;
  ASSERT_TRUE(SchweitzerMvaInPlace(MakeContendedNetwork(32), &ws));
  const std::vector<double> neighbor_qkm = ws.qkm;

  const ClosedNetwork target = MakeContendedNetwork(34);
  const MvaResult cold = SchweitzerMva(target);
  const MvaResult warm = SchweitzerMva(target, /*tolerance=*/1e-9,
                                       /*max_iterations=*/10000,
                                       &neighbor_qkm);
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(warm.ok);
  EXPECT_LT(warm.iterations, cold.iterations);
  for (std::size_t k = 0; k < target.chains.size(); ++k) {
    EXPECT_NEAR(warm.solution.throughput[k], cold.solution.throughput[k],
                1e-7 * cold.solution.throughput[k]);
  }
}

TEST(SchweitzerMva, MismatchedInitialQkmFallsBackToColdStart) {
  const ClosedNetwork net = MakeContendedNetwork(32);
  const MvaResult cold = SchweitzerMva(net);
  ASSERT_TRUE(cold.ok);
  const std::vector<double> wrong_size(3, 0.5);  // needs chains x centers
  const MvaResult fallback = SchweitzerMva(net, /*tolerance=*/1e-9,
                                           /*max_iterations=*/10000,
                                           &wrong_size);
  ASSERT_TRUE(fallback.ok);
  // Identical to a cold solve: same iteration count, same results.
  EXPECT_EQ(fallback.iterations, cold.iterations);
  for (std::size_t k = 0; k < net.chains.size(); ++k) {
    EXPECT_EQ(fallback.solution.throughput[k], cold.solution.throughput[k]);
  }
}

TEST(SolveMva, FallsBackToSchweitzerAboveLimit) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  for (int k = 0; k < 10; ++k) {
    const std::size_t c = net.AddChain("k" + std::to_string(k), 8, 5.0);
    net.chains[c].demands[cpu] = 1.0 + k * 0.1;
  }
  MvaResult res = SolveMva(net, /*exact_state_limit=*/1000);
  ASSERT_TRUE(res.ok);
  for (double x : res.solution.throughput) EXPECT_GT(x, 0.0);
  EXPECT_LE(res.solution.utilization[cpu], 1.0 + 1e-9);
}

// Property sweep: random small networks must satisfy the invariants.
class MvaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MvaPropertyTest, InvariantsOnRandomNetworks) {
  util::Rng rng(GetParam());
  ClosedNetwork net;
  const int num_centers = 1 + static_cast<int>(rng.NextBounded(4));
  const int num_chains = 1 + static_cast<int>(rng.NextBounded(4));
  for (int m = 0; m < num_centers; ++m) {
    net.AddCenter("c" + std::to_string(m), rng.NextDouble() < 0.3
                                               ? CenterKind::kDelay
                                               : CenterKind::kQueueing);
  }
  for (int k = 0; k < num_chains; ++k) {
    const std::size_t c = net.AddChain("k" + std::to_string(k),
                                       1 + static_cast<int>(rng.NextBounded(4)),
                                       rng.NextDouble() * 10);
    for (int m = 0; m < num_centers; ++m)
      net.chains[c].demands[m] = rng.NextDouble() * 5;
  }
  MvaResult res = ExactMva(net);
  ASSERT_TRUE(res.ok) << res.error;
  const auto& s = res.solution;
  double total_customers = 0.0;
  for (std::size_t k = 0; k < net.chains.size(); ++k) {
    EXPECT_GE(s.throughput[k], 0.0);
    EXPECT_GE(s.response_time[k], 0.0);
    total_customers += s.throughput[k] * net.chains[k].think_time;
    // Residence at least the demand at every center.
    for (std::size_t m = 0; m < net.centers.size(); ++m)
      EXPECT_GE(s.residence[k][m], net.chains[k].demands[m] - 1e-12);
  }
  for (std::size_t m = 0; m < net.centers.size(); ++m) {
    total_customers += s.queue_length[m];
    if (net.centers[m].kind == CenterKind::kQueueing)
      EXPECT_LE(s.utilization[m], 1.0 + 1e-9);
  }
  double expected_population = 0.0;
  for (const Chain& chain : net.chains) expected_population += chain.population;
  EXPECT_NEAR(total_customers, expected_population, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, MvaPropertyTest,
                         ::testing::Range(1, 33));

TEST(Bounds, SingleChainValues) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t disk = net.AddCenter("disk", CenterKind::kQueueing);
  const std::size_t dly = net.AddCenter("dly", CenterKind::kDelay);
  const std::size_t k = net.AddChain("jobs", 10, 5.0);
  net.chains[k].demands[cpu] = 2.0;
  net.chains[k].demands[disk] = 4.0;
  net.chains[k].demands[dly] = 3.0;
  const auto bounds = AsymptoticBounds(net);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(bounds[0].total_demand, 9.0);
  EXPECT_DOUBLE_EQ(bounds[0].bottleneck_demand, 4.0);  // delay center excluded
  EXPECT_DOUBLE_EQ(bounds[0].max_throughput, 0.25);    // saturated: 1/D_max
  EXPECT_DOUBLE_EQ(bounds[0].min_response, 10 * 4.0 - 5.0);
}

TEST(Bounds, LightLoadRegimeUsesPopulationBound) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t k = net.AddChain("jobs", 1, 95.0);
  net.chains[k].demands[cpu] = 5.0;
  const auto bounds = AsymptoticBounds(net);
  EXPECT_DOUBLE_EQ(bounds[0].max_throughput, 1.0 / 100.0);  // N/(D+Z)
  EXPECT_DOUBLE_EQ(bounds[0].min_response, 5.0);
}

TEST(Bounds, ExactMvaRespectsBoundsOnRandomNetworks) {
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    ClosedNetwork net;
    const int num_centers = 1 + static_cast<int>(rng.NextBounded(4));
    const int num_chains = 1 + static_cast<int>(rng.NextBounded(3));
    for (int m = 0; m < num_centers; ++m) {
      net.AddCenter("c", rng.NextDouble() < 0.3 ? CenterKind::kDelay
                                                : CenterKind::kQueueing);
    }
    for (int k = 0; k < num_chains; ++k) {
      const std::size_t c =
          net.AddChain("k", 1 + static_cast<int>(rng.NextBounded(5)),
                       rng.NextDouble() * 20);
      for (int m = 0; m < num_centers; ++m)
        net.chains[c].demands[m] = rng.NextDouble() * 8;
    }
    const MvaResult res = ExactMva(net);
    ASSERT_TRUE(res.ok);
    const auto bounds = AsymptoticBounds(net);
    for (std::size_t k = 0; k < net.chains.size(); ++k) {
      EXPECT_LE(res.solution.throughput[k], bounds[k].max_throughput + 1e-9);
      EXPECT_GE(res.solution.response_time[k],
                bounds[k].total_demand - 1e-9);
    }
  }
}

TEST(Ethernet, DelayGrowsWithLoadAndStaysFiniteNearSaturation) {
  EthernetParams params;
  const double frame = 8000.0;  // 1000-byte message
  const double idle = EthernetMeanDelayMs(params, frame, 0.0);
  const double busy = EthernetMeanDelayMs(params, frame, 0.8);
  const double hot = EthernetMeanDelayMs(params, frame, 10.0);
  EXPECT_GT(idle, 0.0);
  EXPECT_GT(busy, idle);
  EXPECT_GT(hot, busy);
  EXPECT_LT(hot, 1000.0);  // clamped, not infinite
  // Transmission of 8000 bits at 10 Mb/s is 0.8 ms; idle delay is close.
  EXPECT_NEAR(idle, 0.8 + params.propagation_ms, 0.05);
}

}  // namespace
}  // namespace carat::qn
