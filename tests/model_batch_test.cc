// Lockstep batch solving at the model layer: CaratModel::SolveBatchInto must
// produce per-lane ModelSolutions bit-identical to scalar SolveInto runs of
// the same inputs. The qn-layer tests (mva_batch_test) prove the kernels'
// lane identity; these tests prove the fixed-point driver preserves it —
// per-lane damping decay, per-lane freezing, warm seeding and the Ethernet
// coupling all included.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "model/solver.h"
#include "workload/spec.h"

namespace carat::model {
namespace {

bool SameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void ExpectBitIdentical(const ModelSolution& got, const ModelSolution& want,
                        const std::string& tag) {
  SCOPED_TRACE(tag);
  ASSERT_EQ(got.ok, want.ok);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.warm_started, want.warm_started);
  EXPECT_EQ(got.error, want.error);
  EXPECT_TRUE(SameBits(got.comm_delay_ms, want.comm_delay_ms));
  ASSERT_EQ(got.sites.size(), want.sites.size());
  for (std::size_t i = 0; i < got.sites.size(); ++i) {
    const SiteSolution& g = got.sites[i];
    const SiteSolution& w = want.sites[i];
    EXPECT_EQ(g.name, w.name);
    EXPECT_TRUE(SameBits(g.cpu_utilization, w.cpu_utilization));
    EXPECT_TRUE(SameBits(g.db_disk_utilization, w.db_disk_utilization));
    EXPECT_TRUE(SameBits(g.log_disk_utilization, w.log_disk_utilization));
    EXPECT_TRUE(SameBits(g.dio_per_s, w.dio_per_s));
    EXPECT_TRUE(SameBits(g.txn_per_s, w.txn_per_s));
    EXPECT_TRUE(SameBits(g.records_per_s, w.records_per_s));
    for (TxnType t : kAllTxnTypes) {
      const ClassSolution& gc = g.Class(t);
      const ClassSolution& wc = w.Class(t);
      EXPECT_EQ(gc.present, wc.present);
      EXPECT_TRUE(SameBits(gc.throughput_per_s, wc.throughput_per_s));
      EXPECT_TRUE(SameBits(gc.response_ms, wc.response_ms));
      EXPECT_TRUE(SameBits(gc.pa, wc.pa));
      EXPECT_TRUE(SameBits(gc.ns, wc.ns));
      EXPECT_TRUE(SameBits(gc.pb, wc.pb));
      EXPECT_TRUE(SameBits(gc.pd, wc.pd));
      EXPECT_TRUE(SameBits(gc.plw, wc.plw));
      EXPECT_TRUE(SameBits(gc.lh, wc.lh));
      EXPECT_TRUE(SameBits(gc.nlk, wc.nlk));
      EXPECT_TRUE(SameBits(gc.sigma, wc.sigma));
      EXPECT_TRUE(SameBits(gc.r_lw_ms, wc.r_lw_ms));
      EXPECT_TRUE(SameBits(gc.r_rw_ms, wc.r_rw_ms));
      EXPECT_TRUE(SameBits(gc.r_cw_ms, wc.r_cw_ms));
      EXPECT_TRUE(SameBits(gc.d_lw_ms, wc.d_lw_ms));
      EXPECT_TRUE(SameBits(gc.d_rw_ms, wc.d_rw_ms));
      EXPECT_TRUE(SameBits(gc.d_cw_ms, wc.d_cw_ms));
    }
  }
}

// A request-size sweep of one workload family: same shape (chain presence),
// different demands per lane — the serving layer's common batch pattern.
std::vector<ModelInput> SweepInputs(const char* family,
                                    const std::vector<int>& ns) {
  std::vector<ModelInput> inputs;
  for (int n : ns) {
    workload::WorkloadSpec wl;
    const std::string f(family);
    if (f == "lb8") wl = workload::MakeLB8(n);
    else if (f == "mb4") wl = workload::MakeMB4(n);
    else if (f == "mb8") wl = workload::MakeMB8(n);
    else wl = workload::MakeUB6(n);
    inputs.push_back(wl.ToModelInput());
  }
  return inputs;
}

struct BatchRun {
  std::vector<ModelSolution> outs;
  std::vector<WarmStart> warms;
};

BatchRun RunBatch(const std::vector<ModelInput>& inputs,
                  const SolverOptions& options,
                  const std::vector<const WarmStart*>* seeds = nullptr) {
  const std::size_t lanes = inputs.size();
  BatchRun run;
  run.outs.resize(lanes);
  run.warms.resize(lanes);
  std::vector<const ModelInput*> in_ptrs(lanes);
  std::vector<ModelSolution*> out_ptrs(lanes);
  std::vector<WarmStart*> warm_ptrs(lanes);
  for (std::size_t w = 0; w < lanes; ++w) {
    in_ptrs[w] = &inputs[w];
    out_ptrs[w] = &run.outs[w];
    warm_ptrs[w] = &run.warms[w];
  }
  BatchSolveArena arena;
  CaratModel::SolveBatchInto(in_ptrs.data(), lanes, options, &arena,
                             seeds != nullptr ? seeds->data() : nullptr,
                             out_ptrs.data(), warm_ptrs.data());
  return run;
}

ModelSolution RunScalar(const ModelInput& input, const SolverOptions& options,
                        const WarmStart* seed = nullptr,
                        WarmStart* warm_out = nullptr) {
  ModelSolution out;
  SolveArena arena;
  CaratModel(input).SolveInto(options, &arena, seed, &out, warm_out);
  return out;
}

TEST(ModelBatch, BitIdenticalToScalarAcrossWorkloadSweeps) {
  for (const char* family : {"lb8", "mb4", "mb8", "ub6"}) {
    const std::vector<ModelInput> inputs =
        SweepInputs(family, {4, 6, 8, 12, 16, 20});
    const SolverOptions options;
    const BatchRun batch = RunBatch(inputs, options);
    for (std::size_t w = 0; w < inputs.size(); ++w) {
      ExpectBitIdentical(batch.outs[w], RunScalar(inputs[w], options),
                         std::string(family) + " lane " + std::to_string(w));
    }
  }
}

TEST(ModelBatch, SchweitzerOnlyOptionTakesLockstepPath) {
  // use_exact_mva = false forces SchweitzerMvaBatchInPlace at every site —
  // the pure lockstep path with no per-lane dispatch decisions.
  SolverOptions options;
  options.use_exact_mva = false;
  const std::vector<ModelInput> inputs = SweepInputs("mb8", {4, 8, 12, 20});
  const BatchRun batch = RunBatch(inputs, options);
  for (std::size_t w = 0; w < inputs.size(); ++w) {
    ExpectBitIdentical(batch.outs[w], RunScalar(inputs[w], options),
                       "schweitzer lane " + std::to_string(w));
  }
}

TEST(ModelBatch, LanesFreezeAtDifferentIterationCounts) {
  // Request sizes 4 vs 20 converge after different iteration counts; each
  // frozen lane must report exactly its scalar twin's count.
  const std::vector<ModelInput> inputs = SweepInputs("ub6", {4, 8, 20});
  const SolverOptions options;
  const BatchRun batch = RunBatch(inputs, options);
  std::vector<int> iters;
  for (std::size_t w = 0; w < inputs.size(); ++w) {
    const ModelSolution scalar = RunScalar(inputs[w], options);
    EXPECT_TRUE(batch.outs[w].converged);
    EXPECT_EQ(batch.outs[w].iterations, scalar.iterations);
    iters.push_back(batch.outs[w].iterations);
  }
  EXPECT_NE(iters.front(), iters.back());
}

TEST(ModelBatch, WarmSeededBatchMatchesWarmSeededScalar) {
  // Converge a sweep, then re-solve a shifted sweep seeded from it. Fresh
  // arenas on both sides keep the retained-MVA state equal (empty), so the
  // seeded trajectories must coincide bitwise.
  const SolverOptions options;
  const std::vector<ModelInput> first = SweepInputs("mb4", {4, 8, 12, 16});
  const std::vector<ModelInput> second = SweepInputs("mb4", {6, 10, 14, 18});
  const BatchRun cold = RunBatch(first, options);
  std::vector<const WarmStart*> seeds;
  for (const WarmStart& w : cold.warms) seeds.push_back(&w);
  const BatchRun warm = RunBatch(second, options, &seeds);
  for (std::size_t w = 0; w < second.size(); ++w) {
    const ModelSolution scalar =
        RunScalar(second[w], options, &cold.warms[w]);
    EXPECT_TRUE(warm.outs[w].warm_started);
    ExpectBitIdentical(warm.outs[w], scalar,
                       "warm lane " + std::to_string(w));
  }
}

TEST(ModelBatch, EthernetCouplingStaysBitIdentical) {
  SolverOptions options;
  options.ethernet = qn::EthernetParams{};
  const std::vector<ModelInput> inputs = SweepInputs("mb8", {4, 8, 16});
  const BatchRun batch = RunBatch(inputs, options);
  for (std::size_t w = 0; w < inputs.size(); ++w) {
    ExpectBitIdentical(batch.outs[w], RunScalar(inputs[w], options),
                       "ethernet lane " + std::to_string(w));
  }
}

TEST(ModelBatch, ThreadPoolSolveIsBitIdenticalToSerial) {
  exec::ThreadPool pool(3);
  SolverOptions serial;
  SolverOptions pooled;
  pooled.pool = &pool;
  const std::vector<ModelInput> inputs = SweepInputs("ub6", {4, 8, 12, 16});
  const BatchRun a = RunBatch(inputs, serial);
  const BatchRun b = RunBatch(inputs, pooled);
  for (std::size_t w = 0; w < inputs.size(); ++w) {
    ExpectBitIdentical(b.outs[w], a.outs[w],
                       "pooled lane " + std::to_string(w));
  }
}

TEST(ModelBatch, InvalidLaneRidesAlongWithoutDisturbingNeighbors) {
  std::vector<ModelInput> inputs = SweepInputs("mb4", {4, 8, 12});
  inputs[1].sites[0].classes[0].population = -1;  // fails validation
  const SolverOptions options;
  const BatchRun batch = RunBatch(inputs, options);
  EXPECT_FALSE(batch.outs[1].ok);
  EXPECT_EQ(batch.outs[1].error, "negative population");
  for (std::size_t w : {std::size_t{0}, std::size_t{2}}) {
    ExpectBitIdentical(batch.outs[w], RunScalar(inputs[w], options),
                       "neighbor lane " + std::to_string(w));
  }
}

TEST(ModelBatch, MixedShapeLaneFailsWithoutDisturbingNeighbors) {
  std::vector<ModelInput> inputs = SweepInputs("mb4", {4, 8, 12});
  inputs[2] = SweepInputs("lb8", {8})[0];  // different chain presence
  const SolverOptions options;
  const BatchRun batch = RunBatch(inputs, options);
  EXPECT_FALSE(batch.outs[2].ok);
  EXPECT_EQ(batch.outs[2].error, "batch lanes differ in model shape");
  for (std::size_t w : {std::size_t{0}, std::size_t{1}}) {
    ExpectBitIdentical(batch.outs[w], RunScalar(inputs[w], options),
                       "neighbor lane " + std::to_string(w));
  }
}

TEST(ModelBatch, ReusedArenaSolvesColdBlocksBitIdentically) {
  // Back-to-back unseeded blocks through one arena must each match fresh
  // scalar solves: cold lanes invalidate their retained Schweitzer columns
  // exactly like the scalar arena's qkm.clear().
  const SolverOptions options;
  const std::vector<ModelInput> first = SweepInputs("mb8", {4, 8, 12, 16});
  const std::vector<ModelInput> second = SweepInputs("mb8", {20, 6, 10, 14});
  BatchSolveArena arena;
  for (const std::vector<ModelInput>* block : {&first, &second}) {
    const std::size_t lanes = block->size();
    std::vector<ModelSolution> outs(lanes);
    std::vector<const ModelInput*> in_ptrs(lanes);
    std::vector<ModelSolution*> out_ptrs(lanes);
    for (std::size_t w = 0; w < lanes; ++w) {
      in_ptrs[w] = &(*block)[w];
      out_ptrs[w] = &outs[w];
    }
    CaratModel::SolveBatchInto(in_ptrs.data(), lanes, options, &arena,
                               nullptr, out_ptrs.data());
    for (std::size_t w = 0; w < lanes; ++w) {
      ExpectBitIdentical(outs[w], RunScalar((*block)[w], options),
                         "reused-arena lane " + std::to_string(w));
    }
  }
}

}  // namespace
}  // namespace carat::model
