#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace carat::sim {
namespace {

TEST(Simulation, ExecutesEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(5.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(9.0, [&] { order.push_back(3); });
  sim.RunUntil(100.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulation, TiesBreakInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.Schedule(3.0, [&order, i] { order.push_back(i); });
  sim.RunUntil(3.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, RunUntilLeavesLaterEventsPending) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  sim.RunUntil(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 10) sim.Schedule(1.0, chain);
  };
  sim.Schedule(0.0, chain);
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.events_executed(), 10u);
}

Process DelayTwice(Simulation& sim, double d, std::vector<double>* marks) {
  co_await Delay{sim, d};
  marks->push_back(sim.now());
  co_await Delay{sim, d};
  marks->push_back(sim.now());
}

TEST(Delay, SuspendsForRequestedTime) {
  Simulation sim;
  std::vector<double> marks;
  DelayTwice(sim, 7.0, &marks);
  sim.RunUntil(100.0);
  EXPECT_EQ(marks, (std::vector<double>{7.0, 14.0}));
}

Process Consume(Simulation& sim, Channel<int>& ch, std::vector<int>* got,
                int count) {
  for (int i = 0; i < count; ++i) {
    got->push_back(co_await ch.Receive());
  }
  (void)sim;
}

TEST(Channel, DeliversInFifoOrder) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  Consume(sim, ch, &got, 3);
  ch.Send(1);
  ch.Send(2);
  ch.Send(3);
  sim.RunUntil(1.0);
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, ReceiverBlocksUntilSend) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  Consume(sim, ch, &got, 1);
  sim.RunUntil(5.0);
  EXPECT_TRUE(got.empty());
  ch.Send(42);
  sim.RunUntil(6.0);
  EXPECT_EQ(got, std::vector<int>{42});
}

Process UseResource(FcfsResource& res, double service, std::vector<double>* done,
                    Simulation& sim) {
  co_await res.Use(service);
  done->push_back(sim.now());
}

TEST(FcfsResource, SerializesAndTracksUtilization) {
  Simulation sim;
  FcfsResource res(sim, "disk");
  std::vector<double> done;
  UseResource(res, 10.0, &done, sim);
  UseResource(res, 10.0, &done, sim);
  UseResource(res, 10.0, &done, sim);
  sim.RunUntil(100.0);
  EXPECT_EQ(done, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(res.completions(), 3u);
  EXPECT_DOUBLE_EQ(res.BusyMs(), 30.0);
}

TEST(FcfsResource, ResetDropsHistoryButKeepsInFlight) {
  Simulation sim;
  FcfsResource res(sim, "disk");
  std::vector<double> done;
  UseResource(res, 10.0, &done, sim);
  UseResource(res, 10.0, &done, sim);
  sim.RunUntil(15.0);  // first done, second mid-service
  res.ResetStats();
  EXPECT_EQ(res.completions(), 0u);
  sim.RunUntil(100.0);
  EXPECT_EQ(res.completions(), 1u);
  EXPECT_DOUBLE_EQ(res.BusyMs(), 5.0);  // the tail of the second service
}

Task<int> AddLater(Simulation& sim, int a, int b) {
  co_await Delay{sim, 3.0};
  co_return a + b;
}

Task<int> Twice(Simulation& sim, int a, int b) {
  const int first = co_await AddLater(sim, a, b);
  const int second = co_await AddLater(sim, first, first);
  co_return second;
}

Process Driver(Simulation& sim, int* out) {
  *out = co_await Twice(sim, 2, 3);
}

TEST(Task, ComposesAndReturnsValues) {
  Simulation sim;
  int out = 0;
  Driver(sim, &out);
  sim.RunUntil(100.0);
  EXPECT_EQ(out, 10);         // (2+3) + (5+5) -> 10
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

Process CriticalSection(Simulation& sim, FifoMutex& mu, double hold,
                        std::vector<std::pair<double, double>>* spans) {
  co_await mu.Lock();
  const double start = sim.now();
  co_await Delay{sim, hold};
  spans->emplace_back(start, sim.now());
  mu.Unlock();
}

TEST(FifoMutex, SerializesCriticalSections) {
  Simulation sim;
  FifoMutex mu(sim);
  std::vector<std::pair<double, double>> spans;
  for (int i = 0; i < 3; ++i) CriticalSection(sim, mu, 5.0, &spans);
  sim.RunUntil(100.0);
  ASSERT_EQ(spans.size(), 3u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].first, spans[i - 1].second);  // no overlap
  }
  EXPECT_FALSE(mu.locked());
}

Process GateWaiter(Gate& gate, bool* done) {
  co_await gate.Wait();
  *done = true;
}

TEST(Gate, OpensAfterAllSignals) {
  Simulation sim;
  Gate gate(3);
  bool done = false;
  GateWaiter(gate, &done);
  gate.Signal();
  gate.Signal();
  EXPECT_FALSE(done);
  gate.Signal();
  EXPECT_TRUE(done);
}

TEST(Gate, ZeroCountIsOpen) {
  Simulation sim;
  Gate gate(0);
  bool done = false;
  GateWaiter(gate, &done);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace carat::sim
