// Concurrency-control backend suite (DESIGN.md §15).
//
// Pins the four cc::Backend policies end to end:
//   - sharded determinism: every backend's testbed fingerprint is
//     byte-identical at shards 1/2/4 (the label carries "tsan-testbed" so
//     the ThreadSanitizer job inherits the multi-shard runs);
//   - zero-contention equivalence: with only read locks in play the policies
//     cannot diverge — model observables are bitwise equal across all four
//     backends, testbed observables are bitwise equal across the three
//     lock-at-access backends, and queue (which sorts and dedups its granule
//     plan, so its event order legitimately differs) stays within noise;
//   - queue is deadlock-free by construction: a run contended enough to
//     thrash 2PL records zero deadlock victims and zero aborts, and commits
//     at least as much as 2PL;
//   - model-vs-testbed validation per backend on the four paper workloads,
//     under the established tolerance policy (2PL keeps the paper-era 25%
//     worst-node bound; the new backends run under wider bounds because
//     their submodels sit at optimistic fixed points under restart churn /
//     queue convoys — see cc_submodel.h);
//   - cache correctness: backends (and the restart backoff) participate in
//     serve::CanonicalKey and model::SolveShapeKey, so two backends on the
//     same scenario never coalesce or cache-alias.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "carat/testbed.h"
#include "cc/cc.h"
#include "fuzz/scenario.h"
#include "model/solver.h"
#include "serve/key.h"
#include "serve/solver_service.h"
#include "workload/spec.h"

namespace carat {
namespace {

using model::TxnType;

// The paper's four standard workloads at their published sizes.
struct PaperConfig {
  const char* name;
  workload::WorkloadSpec spec;
};

std::vector<PaperConfig> PaperConfigs() {
  return {{"lb8", workload::MakeLB8(8)},
          {"mb4", workload::MakeMB4(8)},
          {"mb8", workload::MakeMB8(8)},
          {"ub6", workload::MakeUB6(6)}};
}

// A 4-site, 150-granule MB8 mix: hot enough that 2PL spends the window
// aborting deadlock victims, which is exactly where the backends separate.
workload::WorkloadSpec ContendedSpec(cc::BackendKind kind) {
  workload::WorkloadSpec spec = workload::MakeMB8(8, 4);
  spec.comm_delay_ms = 5.0;
  spec.num_granules = 150;
  spec.cc_backend = kind;
  return spec;
}

TestbedResult RunContended(cc::BackendKind kind, int shards) {
  TestbedOptions opt;
  opt.seed = 3;
  opt.warmup_ms = 10'000;
  opt.measure_ms = 100'000;
  opt.shards = shards;
  return RunTestbed(ContendedSpec(kind).ToModelInput(), opt);
}

std::uint64_t TotalCommits(const TestbedResult& r) {
  std::uint64_t commits = 0;
  for (const NodeResult& node : r.nodes) {
    for (const TypeResult& t : node.types) commits += t.commits;
  }
  return commits;
}

std::uint64_t TotalAborts(const TestbedResult& r) {
  std::uint64_t aborts = 0;
  for (const NodeResult& node : r.nodes) {
    for (const TypeResult& t : node.types) aborts += t.aborts;
  }
  return aborts;
}

std::uint64_t TotalDeadlocks(const TestbedResult& r) {
  std::uint64_t deadlocks = r.global_deadlocks;
  for (const NodeResult& node : r.nodes) deadlocks += node.local_deadlocks;
  return deadlocks;
}

// Bitwise double equality: the determinism and equivalence claims here are
// exact, not approximate, so tolerance-based comparison would be too weak.
bool SameBits(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

// The measurements a user of the testbed observes (everything except
// protocol-internal counters like the event count, which legitimately
// differ between lock-at-access and queue-at-submit machinery).
void ExpectSameObservables(const TestbedResult& a, const TestbedResult& b,
                           const std::string& label) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size()) << label;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const NodeResult& na = a.nodes[i];
    const NodeResult& nb = b.nodes[i];
    EXPECT_TRUE(SameBits(na.txn_per_s, nb.txn_per_s)) << label << " node " << i;
    EXPECT_TRUE(SameBits(na.records_per_s, nb.records_per_s)) << label;
    EXPECT_TRUE(SameBits(na.cpu_utilization, nb.cpu_utilization)) << label;
    EXPECT_TRUE(SameBits(na.dio_per_s, nb.dio_per_s)) << label;
    for (const TxnType t : model::kAllTxnTypes) {
      const TypeResult& ta = na.Type(t);
      const TypeResult& tb = nb.Type(t);
      EXPECT_EQ(ta.commits, tb.commits) << label << " node " << i;
      EXPECT_EQ(ta.aborts, tb.aborts) << label;
      EXPECT_EQ(ta.submissions, tb.submissions) << label;
      EXPECT_TRUE(SameBits(ta.response_ms, tb.response_ms)) << label;
      EXPECT_TRUE(SameBits(ta.lock_wait_ms, tb.lock_wait_ms)) << label;
    }
  }
}

TEST(CcBackends, ShardedDeterminismFingerprintsPerBackend) {
  for (const cc::BackendKind kind : cc::kAllBackends) {
    const TestbedResult serial = RunContended(kind, 1);
    ASSERT_TRUE(serial.ok) << serial.error;
    ASSERT_TRUE(serial.database_consistent) << cc::Name(kind);
    const std::string reference = TestbedResultFingerprint(serial);
    for (const int shards : {2, 4}) {
      const TestbedResult sharded = RunContended(kind, shards);
      ASSERT_TRUE(sharded.ok) << sharded.error;
      EXPECT_EQ(TestbedResultFingerprint(sharded), reference)
          << cc::Name(kind) << " diverges at shards=" << shards;
    }
  }
}

TEST(CcBackends, ZeroContentionBackendsAgree) {
  // Read-only users never hold a write lock, so no policy has a conflict to
  // resolve: every backend must report the same system.
  workload::WorkloadSpec base = workload::MakeMB8(8, 2);
  for (workload::NodeMix& mix : base.nodes) {
    mix.lro = 4;
    mix.lu = 0;
    mix.dro = 2;
    mix.du = 0;
  }

  TestbedOptions opt;
  opt.seed = 7;
  opt.warmup_ms = 10'000;
  opt.measure_ms = 200'000;

  workload::WorkloadSpec ref_spec = base;
  ref_spec.cc_backend = cc::BackendKind::k2PL;
  const model::ModelInput ref_input = ref_spec.ToModelInput();
  const TestbedResult ref_tb = RunTestbed(ref_input, opt);
  ASSERT_TRUE(ref_tb.ok) << ref_tb.error;
  const model::ModelSolution ref_m = model::CaratModel(ref_input).Solve();
  ASSERT_TRUE(ref_m.ok) << ref_m.error;

  for (const cc::BackendKind kind :
       {cc::BackendKind::kNoWait, cc::BackendKind::kWaitDie,
        cc::BackendKind::kQueue}) {
    workload::WorkloadSpec spec = base;
    spec.cc_backend = kind;
    const model::ModelInput input = spec.ToModelInput();
    const std::string label = std::string(cc::Name(kind));

    // Model observables are bitwise equal for every backend: Pb = 0 makes
    // the per-backend submodels produce identical demands.
    const model::ModelSolution m = model::CaratModel(input).Solve();
    ASSERT_TRUE(m.ok) << m.error;
    for (std::size_t i = 0; i < ref_m.sites.size(); ++i) {
      EXPECT_TRUE(SameBits(m.sites[i].txn_per_s, ref_m.sites[i].txn_per_s))
          << label << " site " << i;
      EXPECT_TRUE(
          SameBits(m.sites[i].cpu_utilization, ref_m.sites[i].cpu_utilization))
          << label;
      for (const TxnType t : model::kAllTxnTypes) {
        EXPECT_TRUE(SameBits(m.sites[i].Class(t).throughput_per_s,
                             ref_m.sites[i].Class(t).throughput_per_s))
            << label;
        EXPECT_TRUE(
            SameBits(m.sites[i].Class(t).pa, ref_m.sites[i].Class(t).pa))
            << label;
        EXPECT_TRUE(SameBits(m.sites[i].Class(t).d_lw_ms,
                             ref_m.sites[i].Class(t).d_lw_ms))
            << label;
      }
    }

    const TestbedResult tb = RunTestbed(input, opt);
    ASSERT_TRUE(tb.ok) << tb.error;
    ASSERT_TRUE(tb.database_consistent) << label;
    EXPECT_EQ(TotalAborts(tb), 0u) << label;
    EXPECT_EQ(TotalDeadlocks(tb), 0u) << label;
    if (kind == cc::BackendKind::kQueue) {
      // Queue sorts + dedups each node's granule plan, so its event order
      // (and thus exact commit timing) differs; throughput must still match
      // the lock-at-access backends to well under the run's noise floor.
      EXPECT_NEAR(tb.TotalTxnPerSec(), ref_tb.TotalTxnPerSec(),
                  0.05 * ref_tb.TotalTxnPerSec())
          << label;
    } else {
      // No conflicts ever fire, so the restart backends execute the exact
      // event trajectory of 2PL.
      ExpectSameObservables(tb, ref_tb, label);
    }
  }
}

TEST(CcBackends, QueueRecordsZeroDeadlocksWhereTwoPhaseLockingThrashes) {
  const TestbedResult two_pl = RunContended(cc::BackendKind::k2PL, 1);
  ASSERT_TRUE(two_pl.ok) << two_pl.error;
  ASSERT_TRUE(two_pl.database_consistent);
  // The contention tier is only meaningful if 2PL is actually thrashing.
  ASSERT_GT(TotalDeadlocks(two_pl), 0u);
  ASSERT_GT(TotalAborts(two_pl), TotalCommits(two_pl));

  const TestbedResult queue = RunContended(cc::BackendKind::kQueue, 1);
  ASSERT_TRUE(queue.ok) << queue.error;
  ASSERT_TRUE(queue.database_consistent);
  EXPECT_EQ(TotalDeadlocks(queue), 0u);
  EXPECT_EQ(queue.probes_sent, 0u);
  EXPECT_EQ(TotalAborts(queue), 0u);
  EXPECT_GT(TotalCommits(queue), 0u);
  // Deterministic ordered execution wastes no work on victims, so it cannot
  // commit less than a thrashing 2PL.
  EXPECT_GE(TotalCommits(queue), TotalCommits(two_pl));
}

TEST(CcBackends, ModelTracksTestbedPerBackendOnThePaperWorkloads) {
  // Established tolerance policy (see the validation calibration in
  // DESIGN.md §15): 2PL keeps the paper-era 25% worst-node bound; queue
  // runs under 40% (testbed queue convoys put ~30% between the two nodes
  // themselves on mb8); the restart backends run under 45% (their submodel
  // sits at an optimistic fixed point under restart churn). The runs are
  // deterministic, so these bounds are regression pins, not statistics.
  auto tolerance = [](cc::BackendKind kind) {
    switch (kind) {
      case cc::BackendKind::k2PL:
        return 0.25;
      case cc::BackendKind::kQueue:
        return 0.40;
      default:
        return 0.45;
    }
  };

  for (const cc::BackendKind kind : cc::kAllBackends) {
    for (const PaperConfig& config : PaperConfigs()) {
      workload::WorkloadSpec spec = config.spec;
      spec.cc_backend = kind;
      const model::ModelInput input = spec.ToModelInput();

      TestbedOptions opt;
      opt.seed = 1;
      opt.warmup_ms = 50'000;
      opt.measure_ms = 800'000;
      const TestbedResult tb = RunTestbed(input, opt);
      ASSERT_TRUE(tb.ok) << tb.error;
      ASSERT_TRUE(tb.database_consistent)
          << cc::Name(kind) << " " << config.name;

      const model::ModelSolution m = model::CaratModel(input).Solve();
      ASSERT_TRUE(m.ok) << cc::Name(kind) << " " << config.name << ": "
                        << m.error;
      ASSERT_TRUE(m.converged) << cc::Name(kind) << " " << config.name;

      for (std::size_t i = 0; i < tb.nodes.size(); ++i) {
        const double measured = tb.nodes[i].txn_per_s;
        ASSERT_GT(measured, 0.0) << cc::Name(kind) << " " << config.name;
        const double rel =
            std::abs(m.sites[i].txn_per_s - measured) / measured;
        EXPECT_LE(rel, tolerance(kind))
            << cc::Name(kind) << " " << config.name << " node " << i
            << ": model " << m.sites[i].txn_per_s << " vs testbed "
            << measured;
      }
    }
  }
}

TEST(CcCache, BackendsNeverCacheAliasOrCoalesce) {
  const workload::WorkloadSpec base = workload::MakeMB8(8, 2);
  const model::SolverOptions solver_options;

  // Key separation: every backend pair keys differently in both the
  // solution cache (CanonicalKey) and the arena/batch shape grouping
  // (SolveShapeKey), on an otherwise identical input.
  for (const cc::BackendKind a : cc::kAllBackends) {
    for (const cc::BackendKind b : cc::kAllBackends) {
      if (a == b) continue;
      workload::WorkloadSpec sa = base;
      sa.cc_backend = a;
      workload::WorkloadSpec sb = base;
      sb.cc_backend = b;
      EXPECT_NE(serve::CanonicalKey(sa.ToModelInput(), solver_options),
                serve::CanonicalKey(sb.ToModelInput(), solver_options))
          << cc::Name(a) << " vs " << cc::Name(b);
      EXPECT_NE(model::SolveShapeKey(sa.ToModelInput()),
                model::SolveShapeKey(sb.ToModelInput()))
          << cc::Name(a) << " vs " << cc::Name(b);
    }
  }

  // The restart backoff is a submodel input like any other: two no-wait
  // queries differing only in backoff must not alias either.
  {
    workload::WorkloadSpec spec = base;
    spec.cc_backend = cc::BackendKind::kNoWait;
    model::ModelInput input_a = spec.ToModelInput();
    model::ModelInput input_b = input_a;
    input_b.restart_backoff_ms = 2.0 * input_a.restart_backoff_ms;
    EXPECT_NE(serve::CanonicalKey(input_a, solver_options),
              serve::CanonicalKey(input_b, solver_options));
  }

  // End to end through the service: 2pl / queue / 2pl again. The repeat hits
  // the cache; the queue query must not — and the two backends' solutions
  // are genuinely different fixed points.
  serve::SolverService::Options options;
  options.threads = 1;
  options.warm_start = false;
  serve::SolverService service(std::move(options));
  workload::WorkloadSpec two_pl = base;
  two_pl.cc_backend = cc::BackendKind::k2PL;
  workload::WorkloadSpec queue = base;
  queue.cc_backend = cc::BackendKind::kQueue;

  const model::ModelSolution first =
      service.SolveSync(two_pl.ToModelInput());
  const model::ModelSolution second = service.SolveSync(queue.ToModelInput());
  const model::ModelSolution repeat =
      service.SolveSync(two_pl.ToModelInput());
  ASSERT_TRUE(first.ok && second.ok && repeat.ok);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solved, 2u);      // 2pl and queue each solved once
  EXPECT_EQ(stats.cache_hits, 1u);  // only the literal 2pl repeat replays
  EXPECT_EQ(fuzz::ModelSolutionFingerprint(first),
            fuzz::ModelSolutionFingerprint(repeat));
  EXPECT_NE(fuzz::ModelSolutionFingerprint(first),
            fuzz::ModelSolutionFingerprint(second));
}

}  // namespace
}  // namespace carat
