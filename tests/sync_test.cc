#include <gtest/gtest.h>

#include <vector>

#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/sync.h"

namespace carat::sim {
namespace {

Process HoldPermit(Simulation& sim, CountingSemaphore& sem, double hold_ms,
                   std::vector<double>* acquired_at) {
  co_await sem.Acquire();
  acquired_at->push_back(sim.now());
  co_await Delay{sim, hold_ms};
  sem.Release();
}

TEST(CountingSemaphore, LimitsConcurrency) {
  Simulation sim;
  CountingSemaphore sem(sim, 2);
  std::vector<double> acquired;
  for (int i = 0; i < 4; ++i) HoldPermit(sim, sem, 10.0, &acquired);
  sim.RunUntil(100.0);
  ASSERT_EQ(acquired.size(), 4u);
  EXPECT_DOUBLE_EQ(acquired[0], 0.0);
  EXPECT_DOUBLE_EQ(acquired[1], 0.0);
  EXPECT_DOUBLE_EQ(acquired[2], 10.0);  // waited for a release
  EXPECT_DOUBLE_EQ(acquired[3], 10.0);
  EXPECT_EQ(sem.available(), 2);
  EXPECT_EQ(sem.acquires(), 4u);
  EXPECT_EQ(sem.waits(), 2u);
}

TEST(CountingSemaphore, FifoHandoff) {
  Simulation sim;
  CountingSemaphore sem(sim, 1);
  std::vector<double> acquired;
  HoldPermit(sim, sem, 5.0, &acquired);
  HoldPermit(sim, sem, 5.0, &acquired);
  HoldPermit(sim, sem, 5.0, &acquired);
  sim.RunUntil(100.0);
  EXPECT_EQ(acquired, (std::vector<double>{0.0, 5.0, 10.0}));
}

TEST(CountingSemaphore, ReleaseWithoutWaitersRestoresPermit) {
  Simulation sim;
  CountingSemaphore sem(sim, 1);
  std::vector<double> acquired;
  HoldPermit(sim, sem, 1.0, &acquired);
  sim.RunUntil(10.0);
  EXPECT_EQ(sem.available(), 1);
  EXPECT_EQ(sem.waiting(), 0u);
}

TEST(CountingSemaphore, StatsReset) {
  Simulation sim;
  CountingSemaphore sem(sim, 1);
  std::vector<double> acquired;
  HoldPermit(sim, sem, 1.0, &acquired);
  HoldPermit(sim, sem, 1.0, &acquired);
  sim.RunUntil(10.0);
  EXPECT_GT(sem.acquires(), 0u);
  sem.ResetStats();
  EXPECT_EQ(sem.acquires(), 0u);
  EXPECT_EQ(sem.waits(), 0u);
}

Process LockUnlock(Simulation& sim, FifoMutex& mu, int* active, int* max_seen) {
  co_await mu.Lock();
  ++*active;
  *max_seen = std::max(*max_seen, *active);
  co_await Delay{sim, 3.0};
  --*active;
  mu.Unlock();
}

TEST(FifoMutex, NeverTwoHolders) {
  Simulation sim;
  FifoMutex mu(sim);
  int active = 0, max_seen = 0;
  for (int i = 0; i < 10; ++i) LockUnlock(sim, mu, &active, &max_seen);
  sim.RunUntil(1'000.0);
  EXPECT_EQ(max_seen, 1);
  EXPECT_EQ(active, 0);
  EXPECT_FALSE(mu.locked());
}

TEST(Gate, ManySignalsBeforeWait) {
  Simulation sim;
  Gate gate(2);
  gate.Signal();
  gate.Signal();
  bool done = false;
  [](Gate& g, bool* flag) -> Process {
    co_await g.Wait();
    *flag = true;
  }(gate, &done);
  EXPECT_TRUE(done);  // already open: awaits without suspending
}

}  // namespace
}  // namespace carat::sim
