// The sharded kernel's load-bearing invariant: for the same seed, the
// testbed's results are byte-identical at ANY shard count. Event delivery
// order is fixed by (time, origin site, origin sequence) — never by thread
// arrival — so shards 1, 2, and 4 must produce bit-equal fingerprints on
// every standard workload. A distributed workload needs a non-zero
// communication delay to give the conservative sync its lookahead; with the
// paper's default alpha = 0 the run is forced serial, which must also
// fingerprint-match an explicit shards = 1 run.

#include <gtest/gtest.h>

#include <string>

#include "carat/testbed.h"
#include "workload/spec.h"

namespace carat {
namespace {

TestbedResult RunWith(const model::ModelInput& input, int shards,
                      std::uint64_t seed = 3) {
  TestbedOptions opts;
  opts.seed = seed;
  opts.warmup_ms = 10'000;
  opts.measure_ms = 100'000;
  opts.shards = shards;
  return RunTestbed(input, opts);
}

void ExpectShardCountInvariant(const model::ModelInput& input) {
  const TestbedResult serial = RunWith(input, 1);
  ASSERT_TRUE(serial.ok) << serial.error;
  ASSERT_TRUE(serial.database_consistent);
  const std::string want = TestbedResultFingerprint(serial);
  for (const int shards : {2, 4}) {
    const TestbedResult sharded = RunWith(input, shards);
    ASSERT_TRUE(sharded.ok) << sharded.error;
    EXPECT_EQ(TestbedResultFingerprint(sharded), want)
        << "shards=" << shards << " diverged from the serial run";
  }
}

TEST(TestbedDeterminism, Lb8IsShardCountInvariant) {
  // Local-only: no cross-site messages, so every shard free-runs.
  ExpectShardCountInvariant(workload::MakeLB8(8, 4).ToModelInput());
}

TEST(TestbedDeterminism, Mb4IsShardCountInvariant) {
  auto wl = workload::MakeMB4(8, 4);
  wl.comm_delay_ms = 5.0;  // lookahead for the conservative sync
  ExpectShardCountInvariant(wl.ToModelInput());
}

TEST(TestbedDeterminism, Mb8IsShardCountInvariant) {
  auto wl = workload::MakeMB8(8, 4);
  wl.comm_delay_ms = 5.0;
  ExpectShardCountInvariant(wl.ToModelInput());
}

TEST(TestbedDeterminism, Ub6IsShardCountInvariant) {
  auto wl = workload::MakeUB6(6, 4);
  wl.comm_delay_ms = 5.0;
  ExpectShardCountInvariant(wl.ToModelInput());
}

TEST(TestbedDeterminism, ZeroCommDelayForcesSerialAndStaysIdentical) {
  // alpha = 0 (the paper's Ethernet assumption) leaves no lookahead, so a
  // multi-shard request silently degrades to the serial kernel — and must
  // still be bit-equal to shards = 1.
  const auto input = workload::MakeMB4(8, 4).ToModelInput();
  const TestbedResult serial = RunWith(input, 1);
  const TestbedResult requested4 = RunWith(input, 4);
  ASSERT_TRUE(serial.ok) << serial.error;
  ASSERT_TRUE(requested4.ok) << requested4.error;
  EXPECT_EQ(TestbedResultFingerprint(requested4),
            TestbedResultFingerprint(serial));
}

TEST(TestbedDeterminism, DifferentSeedsStillDiffer) {
  // Guards against a fingerprint that ignores the interesting fields.
  auto wl = workload::MakeMB4(8, 4);
  wl.comm_delay_ms = 5.0;
  const auto input = wl.ToModelInput();
  const TestbedResult a = RunWith(input, 2, /*seed=*/3);
  const TestbedResult b = RunWith(input, 2, /*seed=*/4);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_NE(TestbedResultFingerprint(a), TestbedResultFingerprint(b));
}

}  // namespace
}  // namespace carat
