// Direct tests of the per-node testbed runtime: DM request execution timing
// and I/O accounting, write-ahead journaling, rollback, unlock costs, and
// TM-server serialization.

#include <gtest/gtest.h>

#include "sim/process.h"
#include "sim/simulation.h"
#include "txn/node.h"
#include "workload/spec.h"

namespace carat::txn {
namespace {

model::SiteParams TestSite() {
  // Borrow the Node-A parameterization from the standard workloads.
  return workload::MakeLB8(4).ToModelInput().sites[0];
}

struct ExecResult {
  bool done = false;
  bool ok = false;
  double finished_at = 0.0;
};

sim::Process RunRequest(Node& node, GlobalTxnId gid,
                        const model::ClassParams& costs,
                        RequestSpec request, ExecResult* out) {
  node.locks().StartTxn(gid);
  out->ok = co_await node.ExecuteRequest(gid, costs, request);
  out->done = true;
  out->finished_at = node.simulation().now();
}

sim::Process RunRollback(Node& node, GlobalTxnId gid,
                         const model::ClassParams& costs, bool* done) {
  co_await node.RollbackAt(gid, costs);
  node.locks().EndTxn(gid);
  *done = true;
}

TEST(Node, ReadRequestCostsExactlyItsServiceDemands) {
  sim::Simulation sim;
  const model::SiteParams site = TestSite();
  Node node(sim, 0, site);
  const model::ClassParams& costs = site.Class(model::TxnType::kLRO);

  RequestSpec req;
  req.node = 0;
  req.update = false;
  req.records = {0, 6, 12, 18};  // four distinct granules

  ExecResult result;
  RunRequest(node, 1, costs, req, &result);
  sim.RunUntil(1e9);
  ASSERT_TRUE(result.done);
  EXPECT_TRUE(result.ok);
  // Uncontended: DM cpu (5 visits) + 4 * (LR + DMIO cpu) + 4 block reads.
  const double expected = 5 * costs.dm_cpu_ms +
                          4 * (costs.lr_cpu_ms + costs.dmio_cpu_ms) +
                          4 * site.block_io_ms;
  EXPECT_NEAR(result.finished_at, expected, 1e-9);
  EXPECT_EQ(node.db_disk().completions(), 4u);
  EXPECT_EQ(node.locks().HeldCount(1), 4u);
  EXPECT_EQ(node.log().size(), 0u);  // reads journal nothing
}

TEST(Node, UpdateRequestDoesThreeIosPerAccessAndJournals) {
  sim::Simulation sim;
  const model::SiteParams site = TestSite();
  Node node(sim, 0, site);
  const model::ClassParams& costs = site.Class(model::TxnType::kLU);

  RequestSpec req;
  req.node = 0;
  req.update = true;
  req.records = {0, 6};

  ExecResult result;
  RunRequest(node, 1, costs, req, &result);
  sim.RunUntil(1e9);
  ASSERT_TRUE(result.ok);
  // Table 2: updates cost three block transfers per access.
  EXPECT_EQ(node.db_disk().completions(), 6u);
  EXPECT_EQ(node.log().size(), 2u);  // one before image per access
  EXPECT_EQ(node.database().Read(0), 1);
  EXPECT_EQ(node.database().Read(6), 1);
  EXPECT_TRUE(node.locks().Holds(1, 0, lock::LockMode::kExclusive));
}

TEST(Node, ReaccessingAGranuleReusesItsLock) {
  sim::Simulation sim;
  const model::SiteParams site = TestSite();
  Node node(sim, 0, site);
  const model::ClassParams& costs = site.Class(model::TxnType::kLU);

  RequestSpec req;
  req.node = 0;
  req.update = true;
  req.records = {0, 1, 2};  // three records in the same granule

  ExecResult result;
  RunRequest(node, 1, costs, req, &result);
  sim.RunUntil(1e9);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(node.locks().HeldCount(1), 1u);       // one granule lock
  EXPECT_EQ(node.db_disk().completions(), 9u);    // but 3 I/Os per access
}

TEST(Node, RollbackRestoresDataAndChargesUndoIo) {
  sim::Simulation sim;
  const model::SiteParams site = TestSite();
  Node node(sim, 0, site);
  const model::ClassParams& costs = site.Class(model::TxnType::kLU);

  RequestSpec req;
  req.node = 0;
  req.update = true;
  req.records = {0, 6};
  ExecResult result;
  RunRequest(node, 1, costs, req, &result);
  sim.RunUntil(1e9);
  ASSERT_TRUE(result.ok);
  const auto ios_before = node.db_disk().completions();

  bool rolled_back = false;
  RunRollback(node, 1, costs, &rolled_back);
  sim.RunUntil(2e9);
  ASSERT_TRUE(rolled_back);
  EXPECT_EQ(node.database().Read(0), 0);
  EXPECT_EQ(node.database().Read(6), 0);
  EXPECT_EQ(node.locks().HeldCount(1), 0u);
  // Two granules restored: journal read + database write each.
  EXPECT_EQ(node.db_disk().completions() - ios_before, 4u);
}

TEST(Node, SeparateLogDiskTakesJournalTraffic) {
  sim::Simulation sim;
  model::SiteParams site = TestSite();
  site.separate_log_disk = true;
  Node node(sim, 0, site);
  const model::ClassParams& costs = site.Class(model::TxnType::kLU);

  RequestSpec req;
  req.node = 0;
  req.update = true;
  req.records = {0};
  ExecResult result;
  RunRequest(node, 1, costs, req, &result);
  sim.RunUntil(1e9);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(node.db_disk().completions(), 2u);   // data read + data write
  EXPECT_EQ(node.log_disk().completions(), 1u);  // journal write
  EXPECT_TRUE(node.has_separate_log_disk());
}

sim::Process TmJob(Node& node, double cost, std::vector<double>* done) {
  co_await node.TmHandle(cost);
  done->push_back(node.simulation().now());
}

TEST(Node, TmServerSerializesMessageProcessing) {
  sim::Simulation sim;
  Node node(sim, 0, TestSite());
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) TmJob(node, 8.0, &done);
  sim.RunUntil(1e9);
  // One message at a time through the single TM server.
  EXPECT_EQ(done, (std::vector<double>{8.0, 16.0, 24.0}));
}

TEST(Node, PickRecordsStaysInRange) {
  sim::Simulation sim;
  Node node(sim, 0, TestSite());
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    for (const db::RecordId r : node.PickRecords(4, &rng)) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, node.database().num_records());
    }
  }
}

TEST(Node, SkewedPickConcentratesOnHotSet) {
  sim::Simulation sim;
  model::SiteParams site = TestSite();
  site.hot_data_fraction = 0.1;
  site.hot_access_fraction = 0.8;
  Node node(sim, 0, site);
  util::Rng rng(5);
  const db::RecordId hot_limit =
      static_cast<db::RecordId>(0.1 * node.database().num_records());
  int hot = 0, total = 0;
  for (int i = 0; i < 5000; ++i) {
    for (const db::RecordId r : node.PickRecords(4, &rng)) {
      ++total;
      if (r < hot_limit) ++hot;
    }
  }
  const double ratio = static_cast<double>(hot) / total;
  EXPECT_NEAR(ratio, 0.8, 0.02);
}

}  // namespace
}  // namespace carat::txn
