// Tests for the distributed testbed subsystem (src/dist): the real-time
// execution primitives (reservation-ledger FCFS resource, FIFO ticket
// mutex, DM semaphore), the blocking 2PL lock manager with cancellable
// waits and local cycle detection, the wire vocabulary round trips, and —
// under the `dist` ctest label — full multi-process loopback runs: the
// coordinator spawns real carat_sited processes, walks the handshake,
// cross-checks the aggregate against the in-process RunTestbed reference,
// and drives the open-loop load generator against the live sites.
//
// The e2e tests are wall-clock bound (each site scales virtual time by
// `scale` real ms per virtual ms), so windows are kept short and the
// tolerance work is delegated to the coordinator's calibrated bounds:
//   ctest -L dist

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cc/cc.h"
#include "dist/coordinator.h"
#include "dist/engine.h"
#include "dist/loadgen.h"
#include "dist/rt_lock.h"
#include "dist/runtime.h"
#include "dist/wire.h"
#include "lock/lock_manager.h"
#include "model/types.h"

namespace carat {
namespace {

using lock::LockMode;
using lock::LockOutcome;

// ---- RtResource: the reservation-ledger FCFS server ------------------------

TEST(RtResource, LedgerDeliversExactVirtualDemand) {
  // Four threads contend for one server; the ledger serializes them, and the
  // delivered busy time is *exactly* the summed virtual demand — scheduler
  // overshoot must not leak into the measurement.
  dist::RtClock clock(0.01);  // 100x real time: the whole test is ~0.8 ms
  dist::RtResource server(&clock);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { server.Use(5.0); });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(server.BusyVirtualMs(), 20.0);
  EXPECT_EQ(server.completions(), 4u);

  server.ResetStats();
  EXPECT_DOUBLE_EQ(server.BusyVirtualMs(), 0.0);
  EXPECT_EQ(server.completions(), 0u);
}

TEST(RtResource, QueueingStretchesWallClockBeyondOneService) {
  // Two 10 vms services through one server take >= 20 vms of wall clock:
  // the second reservation starts where the first ends, never alongside it.
  dist::RtClock clock(0.01);
  dist::RtResource server(&clock);
  const auto start = std::chrono::steady_clock::now();
  std::thread other([&] { server.Use(10.0); });
  server.Use(10.0);
  other.join();
  const std::chrono::duration<double, std::milli> real =
      std::chrono::steady_clock::now() - start;
  EXPECT_GE(real.count(), 20.0 * 0.01 * 0.95);  // 5% timer slack
}

// ---- RtFifoMutex: the serially reusable TM server --------------------------

TEST(RtFifoMutex, ServesWaitersInArrivalOrder) {
  dist::RtFifoMutex tm;
  std::vector<int> order;
  tm.Lock();  // hold while the waiters enqueue, staggered far apart
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&tm, &order, i] {
      dist::RtClock::SleepRealMs(80.0 * i);
      tm.Lock();
      order.push_back(i);
      tm.Unlock();
    });
  }
  dist::RtClock::SleepRealMs(80.0 * 3);
  tm.Unlock();
  for (auto& t : threads) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Regression: the ticket-lock implementation woke every waiter per release
// (O(queue) wakeups per service), which livelocked a site once the watchdog's
// probe storm queued a few thousand TmHandle calls. The handoff version wakes
// exactly one; a deep queue must drain while preserving mutual exclusion.
TEST(RtFifoMutex, DrainsADeepQueueWithoutCollapse) {
  dist::RtFifoMutex tm;
  int counter = 0;  // non-atomic on purpose: races would corrupt it
  constexpr int kThreads = 64;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        tm.Lock();
        ++counter;
        tm.Unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kRounds);
  EXPECT_EQ(tm.Depth(), 0u);
}

// ---- RtSemaphore: the DM pool ----------------------------------------------

TEST(RtSemaphore, CountsAcquisitionsThatHadToWait) {
  dist::RtSemaphore pool(1);
  pool.Acquire();
  EXPECT_EQ(pool.waits(), 0u);
  std::thread blocked([&] { pool.Acquire(); });
  dist::RtClock::SleepRealMs(50.0);
  pool.Release();
  blocked.join();
  EXPECT_EQ(pool.waits(), 1u);
  pool.Release();
  pool.ResetStats();
  EXPECT_EQ(pool.waits(), 0u);
}

// ---- WorkerPool: spawn-on-demand must never strand a queued task -----------

// Regression: Submit used to trust `idle_ > 0` and notify_one, but a waiter
// already released for an earlier task still counts as idle, so the second
// notify could be lost and the task sat queued until the first handler
// finished. With handler A blocking until handler B runs (a REMDO waiting on
// the VICTIM cancel that only a later message delivers), that was a deadlock.
TEST(WorkerPool, RunsAQueuedTaskWhileAnEarlierTaskBlocks) {
  dist::WorkerPool pool;

  // Park one worker in the idle state so Submit takes the notify path.
  {
    std::promise<void> warm;
    pool.Submit([&] { warm.set_value(); });
    warm.get_future().wait();
  }
  dist::RtClock::SleepRealMs(50.0);

  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::promise<void> unblocked;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return released; });
    unblocked.set_value();
  });
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  });

  auto done = unblocked.get_future();
  const bool ok =
      done.wait_for(std::chrono::seconds(10)) == std::future_status::ready;
  if (!ok) {
    // Unblock manually so the pool destructor can join instead of hanging.
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
  EXPECT_TRUE(ok) << "second task stranded behind a blocked worker";
}

// A burst that blocks several handlers at once spawns that many workers;
// once the burst resolves the extra workers must retire instead of parking
// forever (a contended run was observed stranding thousands).
TEST(WorkerPool, IdleWorkersRetireAfterABurst) {
  dist::WorkerPool pool;
  {
    std::mutex mu;
    std::condition_variable cv;
    bool released = false;
    std::vector<std::future<void>> running;
    for (int i = 0; i < 8; ++i) {
      auto started = std::make_shared<std::promise<void>>();
      running.push_back(started->get_future());
      pool.Submit([&, started] {
        started->set_value();
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return released; });
      });
    }
    for (auto& f : running) f.wait();
    EXPECT_GE(pool.stats().threads, 8u);
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
  // Retirement triggers after ~2s idle; poll rather than assume scheduling.
  std::size_t live = 0;
  for (int i = 0; i < 100; ++i) {
    live = pool.stats().threads;
    if (live <= 1) break;
    dist::RtClock::SleepRealMs(100.0);
  }
  EXPECT_LE(live, 1u) << "idle workers never retired";
}

// ---- RtLockManager: blocking 2PL with cancellable waits --------------------

TEST(RtLockManager, SharedHoldersCoexistAndExclusiveWaits) {
  dist::RtLockManager locks;
  EXPECT_EQ(locks.Acquire(1, 7, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 7, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.HeldCount(1), 1u);
  EXPECT_EQ(locks.HeldCount(2), 1u);

  LockOutcome outcome = LockOutcome::kAborted;
  std::thread writer([&] { outcome = locks.Acquire(3, 7, LockMode::kExclusive); });
  while (!locks.IsWaiting(3)) dist::RtClock::SleepRealMs(1.0);
  const auto blocked_on = locks.WaitingFor(3);
  EXPECT_EQ(blocked_on.size(), 2u);  // both shared holders

  locks.ReleaseAll(1);
  dist::RtClock::SleepRealMs(20.0);
  EXPECT_TRUE(locks.IsWaiting(3));  // one conflicting holder remains
  locks.ReleaseAll(2);
  writer.join();
  EXPECT_EQ(outcome, LockOutcome::kGranted);
  EXPECT_EQ(locks.blocks(), 1u);
  locks.ReleaseAll(3);
}

TEST(RtLockManager, LocalCycleKillsTheRequesterThatClosesIt) {
  dist::RtLockManager locks;
  ASSERT_EQ(locks.Acquire(1, 10, LockMode::kExclusive), LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(2, 20, LockMode::kExclusive), LockOutcome::kGranted);

  LockOutcome waiter_outcome = LockOutcome::kAborted;
  std::thread waiter([&] {
    waiter_outcome = locks.Acquire(2, 10, LockMode::kExclusive);
  });
  while (!locks.IsWaiting(2)) dist::RtClock::SleepRealMs(1.0);

  // 1 -> 2 would close the 1 -> 2 -> 1 cycle: the requester dies on the
  // spot, without ever joining the queue.
  EXPECT_EQ(locks.Acquire(1, 20, LockMode::kExclusive), LockOutcome::kAborted);
  EXPECT_EQ(locks.local_deadlocks(), 1u);

  locks.ReleaseAll(1);  // victim rolls back; the survivor's wait resolves
  waiter.join();
  EXPECT_EQ(waiter_outcome, LockOutcome::kGranted);
  locks.ReleaseAll(2);
}

TEST(RtLockManager, CancelWaitResumesTheWaiterWithAborted) {
  dist::RtLockManager locks;
  ASSERT_EQ(locks.Acquire(1, 5, LockMode::kExclusive), LockOutcome::kGranted);
  LockOutcome outcome = LockOutcome::kGranted;
  std::thread waiter([&] { outcome = locks.Acquire(2, 5, LockMode::kShared); });
  while (!locks.IsWaiting(2)) dist::RtClock::SleepRealMs(1.0);

  EXPECT_TRUE(locks.CancelWait(2));  // a global VICTIM message lands here
  waiter.join();
  EXPECT_EQ(outcome, LockOutcome::kAborted);
  EXPECT_EQ(locks.cancelled_waits(), 1u);
  EXPECT_FALSE(locks.CancelWait(2));  // nothing pending any more
  EXPECT_EQ(locks.HeldCount(2), 0u);
  locks.ReleaseAll(1);
}

TEST(RtLockManager, OnBlockReportsTheConflictingHolders) {
  dist::RtLockManager locks;
  std::mutex mu;
  std::condition_variable cv;
  dist::TxnId blocked_waiter = 0;
  std::vector<dist::TxnId> blocked_holders;
  locks.on_block = [&](dist::TxnId waiter, std::vector<dist::TxnId> holders) {
    std::lock_guard<std::mutex> guard(mu);
    blocked_waiter = waiter;
    blocked_holders = std::move(holders);
    cv.notify_all();
  };

  ASSERT_EQ(locks.Acquire(9, 3, LockMode::kExclusive), LockOutcome::kGranted);
  std::thread waiter([&] { locks.Acquire(11, 3, LockMode::kExclusive); });
  {
    std::unique_lock<std::mutex> guard(mu);
    ASSERT_TRUE(cv.wait_for(guard, std::chrono::seconds(5),
                            [&] { return blocked_waiter != 0; }));
  }
  EXPECT_EQ(blocked_waiter, 11u);
  EXPECT_EQ(blocked_holders, (std::vector<dist::TxnId>{9}));
  locks.ReleaseAll(9);
  waiter.join();
  locks.ReleaseAll(11);
}

// ---- Wire vocabulary -------------------------------------------------------

TEST(Wire, TokenReaderWalksTypedTokens) {
  dist::wire::TokenReader reader("REMDO 42 DU 1,2,3 -7 2.5");
  std::string_view verb;
  ASSERT_TRUE(reader.Next(&verb));
  EXPECT_EQ(verb, "REMDO");
  std::uint64_t gid = 0;
  ASSERT_TRUE(reader.NextU64(&gid));
  EXPECT_EQ(gid, 42u);
  std::string_view type;
  ASSERT_TRUE(reader.Next(&type));
  EXPECT_EQ(type, "DU");
  std::string_view records;
  ASSERT_TRUE(reader.Next(&records));
  int negative = 0;
  ASSERT_TRUE(reader.NextInt(&negative));
  EXPECT_EQ(negative, -7);
  double fraction = 0.0;
  ASSERT_TRUE(reader.NextDouble(&fraction));
  EXPECT_DOUBLE_EQ(fraction, 2.5);
  std::string_view end;
  EXPECT_FALSE(reader.Next(&end));
}

TEST(Wire, RecordListsRoundTripAndRejectGarbage) {
  const std::vector<db::RecordId> records{5, 0, 999};
  const std::string joined = dist::wire::JoinRecords(records);
  std::vector<db::RecordId> back;
  ASSERT_TRUE(dist::wire::SplitRecords(joined, &back));
  EXPECT_EQ(back, records);
  EXPECT_FALSE(dist::wire::SplitRecords("1,,2", &back));
  EXPECT_FALSE(dist::wire::SplitRecords("1,x", &back));
}

TEST(Wire, DistConfigSurvivesTheControlChannel) {
  dist::wire::DistConfig config;
  config.workload = "ub6";
  config.cc = "waitdie";
  config.requests_per_txn = 6;
  config.sites = 4;
  config.num_granules = 48;
  config.records_per_granule = 3;
  config.dm_pool_size = 5;
  config.think_time_ms = 12.5;
  config.seed = 987654321;
  config.scale = 0.05;
  config.spawn_users = false;
  config.probe_cpu_ms = 1.25;
  config.reprobe_interval_ms = 333.0;
  config.max_probe_hops = 17;

  dist::wire::DistConfig decoded;
  std::string error;
  ASSERT_TRUE(dist::wire::DistConfig::Decode(config.Encode(), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.workload, config.workload);
  EXPECT_EQ(decoded.cc, config.cc);
  EXPECT_EQ(decoded.requests_per_txn, config.requests_per_txn);
  EXPECT_EQ(decoded.sites, config.sites);
  EXPECT_EQ(decoded.num_granules, config.num_granules);
  EXPECT_EQ(decoded.records_per_granule, config.records_per_granule);
  EXPECT_EQ(decoded.dm_pool_size, config.dm_pool_size);
  EXPECT_DOUBLE_EQ(decoded.think_time_ms, config.think_time_ms);
  EXPECT_EQ(decoded.seed, config.seed);
  EXPECT_DOUBLE_EQ(decoded.scale, config.scale);
  EXPECT_EQ(decoded.spawn_users, config.spawn_users);
  EXPECT_DOUBLE_EQ(decoded.probe_cpu_ms, config.probe_cpu_ms);
  EXPECT_DOUBLE_EQ(decoded.reprobe_interval_ms, config.reprobe_interval_ms);
  EXPECT_EQ(decoded.max_probe_hops, config.max_probe_hops);

  // The shipped config must reconstruct the same workload on every site,
  // including the concurrency-control backend.
  const auto spec = decoded.ToSpec();
  EXPECT_EQ(spec.cc_backend, cc::BackendKind::kWaitDie);
  EXPECT_EQ(spec.ToModelInput().sites.size(), 4u);
}

TEST(Wire, DistConfigWithoutCcMeansTwoPhaseLocking) {
  // Pre-backend coordinators never send a cc token; the decoder must treat
  // that as 2PL so old and new binaries interoperate.
  dist::wire::DistConfig decoded;
  std::string error;
  const std::string body =
      " workload=mb8 n=8 sites=2 granules=3000 rpg=6 dm_pool=0 think_ms=0"
      " seed=1 scale=0.1 users=1 probe_cpu=1 reprobe_ms=200 max_hops=64";
  ASSERT_TRUE(dist::wire::DistConfig::Decode(body, &decoded, &error)) << error;
  EXPECT_EQ(decoded.cc, "2pl");
  EXPECT_EQ(decoded.ToSpec().cc_backend, cc::BackendKind::k2PL);
}

TEST(Wire, DistConfigRejectsUnknownCcBackend) {
  dist::wire::DistConfig config;
  config.cc = "optimistic";
  dist::wire::DistConfig decoded;
  std::string error;
  EXPECT_FALSE(dist::wire::DistConfig::Decode(config.Encode(), &decoded,
                                              &error));
  EXPECT_NE(error.find("unknown cc backend"), std::string::npos) << error;
}

TEST(Wire, CheckMeshBackendsRejectsMixedMeshes) {
  EXPECT_EQ(dist::wire::CheckMeshBackends({"2pl", "2pl"}, "2pl"), "");
  EXPECT_EQ(dist::wire::CheckMeshBackends({"queue", "queue"}, "queue"), "");
  const std::string mixed =
      dist::wire::CheckMeshBackends({"2pl", "queue"}, "2pl");
  EXPECT_NE(mixed.find("mixed-backend mesh"), std::string::npos) << mixed;
  EXPECT_NE(mixed.find("site 1"), std::string::npos) << mixed;
  // A homogeneous mesh that disagrees with the coordinator's config is just
  // as broken: the sites would execute a different protocol than CONFIG
  // describes.
  const std::string wrong =
      dist::wire::CheckMeshBackends({"nowait", "nowait"}, "2pl");
  EXPECT_NE(wrong.find("mixed-backend mesh"), std::string::npos) << wrong;
}

TEST(Wire, EngineReportSurvivesTheReportChannel) {
  dist::EngineReport report;
  report.measured_vms = 5000.25;
  report.cpu_busy_vms = 1234.5;
  report.db_busy_vms = 678.0;
  report.log_busy_vms = 90.0;
  report.dio = 4321;
  report.lock_requests = 999;
  report.lock_blocks = 55;
  report.local_deadlocks = 3;
  report.cancelled_waits = 2;
  report.global_deadlocks = 7;
  report.probes_sent = 41;
  report.messages_sent = 1234;
  report.dm_pool_waits = 11;
  report.ext_commits = 17;
  report.ext_aborts = 4;
  report.drained = true;
  report.audit_ok = true;
  auto& lu = report.types[model::Index(model::TxnType::kLU)];
  lu.present = true;
  lu.commits = 120;
  lu.submissions = 130;
  lu.aborts = 10;
  lu.records_committed = 960;
  lu.response_sum_vms = 43210.5;
  lu.lock_wait_sum_vms = 1000.25;
  lu.remote_wait_sum_vms = 0.0;
  lu.commit_wait_sum_vms = 420.75;

  dist::EngineReport decoded;
  ASSERT_TRUE(dist::EngineReport::Decode(report.Encode(), &decoded));
  EXPECT_DOUBLE_EQ(decoded.measured_vms, report.measured_vms);
  EXPECT_DOUBLE_EQ(decoded.cpu_busy_vms, report.cpu_busy_vms);
  EXPECT_DOUBLE_EQ(decoded.db_busy_vms, report.db_busy_vms);
  EXPECT_DOUBLE_EQ(decoded.log_busy_vms, report.log_busy_vms);
  EXPECT_EQ(decoded.dio, report.dio);
  EXPECT_EQ(decoded.lock_requests, report.lock_requests);
  EXPECT_EQ(decoded.lock_blocks, report.lock_blocks);
  EXPECT_EQ(decoded.local_deadlocks, report.local_deadlocks);
  EXPECT_EQ(decoded.cancelled_waits, report.cancelled_waits);
  EXPECT_EQ(decoded.global_deadlocks, report.global_deadlocks);
  EXPECT_EQ(decoded.probes_sent, report.probes_sent);
  EXPECT_EQ(decoded.messages_sent, report.messages_sent);
  EXPECT_EQ(decoded.dm_pool_waits, report.dm_pool_waits);
  EXPECT_EQ(decoded.ext_commits, report.ext_commits);
  EXPECT_EQ(decoded.ext_aborts, report.ext_aborts);
  EXPECT_TRUE(decoded.drained);
  EXPECT_TRUE(decoded.audit_ok);
  const auto& lu2 = decoded.types[model::Index(model::TxnType::kLU)];
  EXPECT_TRUE(lu2.present);
  EXPECT_EQ(lu2.commits, lu.commits);
  EXPECT_EQ(lu2.submissions, lu.submissions);
  EXPECT_EQ(lu2.aborts, lu.aborts);
  EXPECT_EQ(lu2.records_committed, lu.records_committed);
  EXPECT_DOUBLE_EQ(lu2.response_sum_vms, lu.response_sum_vms);
  EXPECT_DOUBLE_EQ(lu2.lock_wait_sum_vms, lu.lock_wait_sum_vms);
  EXPECT_DOUBLE_EQ(lu2.commit_wait_sum_vms, lu.commit_wait_sum_vms);
  EXPECT_FALSE(decoded.types[model::Index(model::TxnType::kDUC)].present);
}

// ---- Multi-process loopback runs (ctest -L dist) ---------------------------

dist::DistRunOptions BaseE2eOptions() {
  dist::DistRunOptions options;
  options.config.scale = 0.1;
  options.config.seed = 20260808;
  options.warmup_real_ms = 800.0;
  options.measure_real_ms = 2500.0;
  options.sited_bin = dist::ResolveSitedBinary();
  return options;
}

TEST(DistE2e, TwoSiteCrossCheckAgainstTheReference) {
  auto options = BaseE2eOptions();
  if (options.sited_bin.empty()) GTEST_SKIP() << "carat_sited not built";
  options.config.workload = "mb8";
  options.config.requests_per_txn = 8;
  options.config.sites = 2;

  const auto result = dist::RunDistributed(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.all_drained);
  EXPECT_TRUE(result.all_audits_ok);
  EXPECT_GT(result.commits, 0u);
  EXPECT_GT(result.messages_sent, 0u);  // mb8 crosses sites
  EXPECT_GT(result.alpha_virtual_ms, 0.0);
  ASSERT_TRUE(result.checked);
  EXPECT_TRUE(result.within_tolerance)
      << "throughput err " << result.throughput_rel_err << ", response err "
      << result.response_rel_err << ", restart err " << result.restart_abs_err;
}

TEST(DistE2e, FourSiteAllLocalWorkloadStaysQuiet) {
  auto options = BaseE2eOptions();
  if (options.sited_bin.empty()) GTEST_SKIP() << "carat_sited not built";
  options.config.workload = "lb8";
  options.config.requests_per_txn = 8;
  options.config.sites = 4;
  options.measure_real_ms = 2000.0;

  const auto result = dist::RunDistributed(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.all_drained);
  EXPECT_TRUE(result.all_audits_ok);
  EXPECT_GT(result.commits, 0u);
  EXPECT_EQ(result.global_deadlocks, 0u);  // all-local: no cross-site cycles
  ASSERT_TRUE(result.checked);
  EXPECT_TRUE(result.within_tolerance)
      << "throughput err " << result.throughput_rel_err << ", response err "
      << result.response_rel_err << ", restart err " << result.restart_abs_err;
}

TEST(DistE2e, ContendedRunDetectsGlobalDeadlocksAndStaysConsistent) {
  auto options = BaseE2eOptions();
  if (options.sited_bin.empty()) GTEST_SKIP() << "carat_sited not built";
  options.config.workload = "mb8";
  options.config.requests_per_txn = 8;
  options.config.sites = 2;
  // Small database: cross-site cycles form reliably (4-14 per run across
  // seeds) while the drain cascade still resolves in a couple of seconds.
  // Far smaller databases (e.g. 48 granules) wind up so hard that victim
  // rollback + re-probe cascades can outlast the coordinator's DRAINED
  // deadline on a loaded machine.
  options.config.num_granules = 160;
  options.measure_real_ms = 2000.0;
  options.check = false;  // the reference tolerance is calibrated uncontended

  const auto result = dist::RunDistributed(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.all_drained);
  EXPECT_TRUE(result.all_audits_ok);  // every probe victim rolled back cleanly
  EXPECT_GT(result.global_deadlocks, 0u);
  EXPECT_GT(result.dist_restart_prob, 0.0);
}

TEST(DistE2e, LoadgenDrivesOpenLoopTrafficWithMergedHistograms) {
  auto options = BaseE2eOptions();
  if (options.sited_bin.empty()) GTEST_SKIP() << "carat_sited not built";
  options.config.workload = "mb8";
  options.config.requests_per_txn = 8;
  options.config.sites = 2;
  options.config.spawn_users = false;  // external traffic only
  options.check = false;
  options.measure_real_ms = 2500.0;

  dist::LoadgenResult load;
  options.during_measure = [&](const std::vector<std::string>& endpoints) {
    // Let every site pass its warm-up ResetStats first, so the sites'
    // ext_commits counters see the whole load-generator run.
    dist::RtClock::SleepRealMs(options.warmup_real_ms + 300.0);
    dist::LoadgenOptions lg;
    lg.targets = endpoints;
    lg.connections = 2;
    lg.ops_per_txn = 4;
    lg.type = "mix";
    lg.rate_per_s = 60.0;
    lg.duration_s = 1.5;
    load = dist::RunLoadgen(lg);
  };

  const auto result = dist::RunDistributed(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.all_drained);
  EXPECT_TRUE(result.all_audits_ok);
  EXPECT_EQ(result.commits, 0u);  // no resident users were spawned

  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_GT(load.scheduled, 0u);
  EXPECT_EQ(load.completed, load.scheduled);
  EXPECT_EQ(load.errors, 0u);
  EXPECT_GT(load.committed, 0u);
  EXPECT_EQ(load.histogram.count(), load.completed);
  EXPECT_GT(load.p50_ms, 0.0);
  EXPECT_GE(load.p99_ms, load.p50_ms);
  // Sites account the external transactions they served.
  EXPECT_EQ(result.ext_commits, load.committed);
}

}  // namespace
}  // namespace carat
