// Randomized stress for the lock manager: many transactions hammering a
// small granule pool with mixed S/X workloads. Checks the fundamental
// invariants under every interleaving the seed produces:
//   - mutual exclusion (an X holder excludes every other holder),
//   - reader sharing (S holders coexist, never with a foreign X),
//   - progress (deadlock detection always unjams the system),
//   - clean shutdown (no locks or waiters left behind).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "lock/lock_manager.h"
#include "lock/lock_manager_set.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/random.h"

namespace carat::lock {
namespace {

constexpr db::GranuleId kGranules = 12;  // small pool => heavy conflicts

struct Shared {
  sim::Simulation sim;
  LockManager lm{sim};
  util::Rng rng{0};
  // External mirror of who holds what, maintained by the workers.
  std::array<TxnId, kGranules> x_owner{};
  std::array<std::set<TxnId>, kGranules> s_holders;
  TxnId next_gid = 1;
  int finished_workers = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  bool violation = false;
};

sim::Process Worker(Shared& ctx, int rounds) {
  util::Rng rng = ctx.rng.Fork();
  for (int round = 0; round < rounds;) {
    const TxnId gid = ctx.next_gid++;
    ctx.lm.StartTxn(gid);
    const bool exclusive = rng.NextDouble() < 0.5;
    const LockMode mode = exclusive ? LockMode::kExclusive : LockMode::kShared;

    // Pick 1..5 distinct granules.
    std::set<db::GranuleId> picks;
    const int want = 1 + static_cast<int>(rng.NextBounded(5));
    while (static_cast<int>(picks.size()) < want) {
      picks.insert(static_cast<db::GranuleId>(rng.NextBounded(kGranules)));
    }

    bool aborted = false;
    std::vector<db::GranuleId> held;
    for (const db::GranuleId g : picks) {
      co_await sim::Delay{ctx.sim, 1.0 + rng.NextDouble() * 3.0};
      const LockOutcome outcome = co_await ctx.lm.Acquire(gid, g, mode);
      if (outcome == LockOutcome::kAborted) {
        aborted = true;
        break;
      }
      // Mirror the grant and verify exclusion against the external state.
      if (exclusive) {
        if (ctx.x_owner[g] != 0 || !ctx.s_holders[g].empty()) {
          ctx.violation = true;
        }
        ctx.x_owner[g] = gid;
      } else {
        if (ctx.x_owner[g] != 0) ctx.violation = true;
        ctx.s_holders[g].insert(gid);
      }
      held.push_back(g);
    }

    if (!aborted) {
      co_await sim::Delay{ctx.sim, 2.0 + rng.NextDouble() * 5.0};
      ++ctx.commits;
      ++round;  // only successful rounds count toward completion
    } else {
      ++ctx.aborts;
    }

    for (const db::GranuleId g : held) {
      if (exclusive) {
        ctx.x_owner[g] = 0;
      } else {
        ctx.s_holders[g].erase(gid);
      }
    }
    ctx.lm.ReleaseAll(gid);
    ctx.lm.EndTxn(gid);
  }
  ++ctx.finished_workers;
}

class LockStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockStressTest, InvariantsHoldUnderRandomSchedules) {
  Shared ctx;
  ctx.rng.Seed(GetParam());
  constexpr int kWorkers = 10;
  constexpr int kRounds = 60;
  for (int w = 0; w < kWorkers; ++w) Worker(ctx, kRounds);
  ctx.sim.RunUntil(10'000'000.0);

  EXPECT_EQ(ctx.finished_workers, kWorkers) << "livelock or lost wakeup";
  EXPECT_FALSE(ctx.violation) << "lock exclusion violated";
  EXPECT_EQ(ctx.commits, static_cast<std::uint64_t>(kWorkers) * kRounds);
  EXPECT_EQ(ctx.lm.TotalHeld(), 0u);
  // With 50% writers on 12 granules, conflicts (and some deadlocks) are
  // statistically certain across 600 committed transactions.
  EXPECT_GT(ctx.lm.blocks(), 0u);
  if (ctx.aborts > 0) {
    EXPECT_GT(ctx.lm.local_deadlocks(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockStressTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(LockStressVictimPolicies, AllPoliciesPreserveInvariants) {
  for (const VictimPolicy policy :
       {VictimPolicy::kRequester, VictimPolicy::kYoungest,
        VictimPolicy::kOldest}) {
    Shared ctx;
    ctx.rng.Seed(99);
    ctx.lm.set_victim_policy(policy);
    for (int w = 0; w < 8; ++w) Worker(ctx, 40);
    ctx.sim.RunUntil(10'000'000.0);
    EXPECT_EQ(ctx.finished_workers, 8) << static_cast<int>(policy);
    EXPECT_FALSE(ctx.violation);
    EXPECT_EQ(ctx.lm.TotalHeld(), 0u);
  }
}

// ---------------------------------------------------------------------------
// The same invariants against LockManagerSet: one lock manager per site of a
// sharded kernel, each hammered by its own site's workers. Checks per-site
// exclusion plus the aggregate stat accessors the testbed relies on.

constexpr int kSites = 3;

struct MultiSiteShared {
  sim::ShardedKernel kernel{kSites, /*num_shards=*/1, /*lookahead_ms=*/0.0};
  LockManagerSet lms{kernel};
  util::Rng rng{0};
  std::array<std::array<TxnId, kGranules>, kSites> x_owner{};
  std::array<std::array<std::set<TxnId>, kGranules>, kSites> s_holders;
  TxnId next_gid = 1;
  int finished_workers = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  bool violation = false;
};

sim::Process SiteWorker(MultiSiteShared& ctx, int site, int rounds) {
  util::Rng rng = ctx.rng.Fork();
  LockManager& lm = ctx.lms.at(site);
  const sim::SitePort port{&ctx.kernel, site};
  auto& x_owner = ctx.x_owner[site];
  auto& s_holders = ctx.s_holders[site];
  for (int round = 0; round < rounds;) {
    const TxnId gid = ctx.next_gid++;
    lm.StartTxn(gid);
    const bool exclusive = rng.NextDouble() < 0.5;
    const LockMode mode = exclusive ? LockMode::kExclusive : LockMode::kShared;

    std::set<db::GranuleId> picks;
    const int want = 1 + static_cast<int>(rng.NextBounded(5));
    while (static_cast<int>(picks.size()) < want) {
      picks.insert(static_cast<db::GranuleId>(rng.NextBounded(kGranules)));
    }

    bool aborted = false;
    std::vector<db::GranuleId> held;
    for (const db::GranuleId g : picks) {
      co_await sim::Delay{port, 1.0 + rng.NextDouble() * 3.0};
      const LockOutcome outcome = co_await lm.Acquire(gid, g, mode);
      if (outcome == LockOutcome::kAborted) {
        aborted = true;
        break;
      }
      if (exclusive) {
        if (x_owner[g] != 0 || !s_holders[g].empty()) ctx.violation = true;
        x_owner[g] = gid;
      } else {
        if (x_owner[g] != 0) ctx.violation = true;
        s_holders[g].insert(gid);
      }
      held.push_back(g);
    }

    if (!aborted) {
      co_await sim::Delay{port, 2.0 + rng.NextDouble() * 5.0};
      ++ctx.commits;
      ++round;
    } else {
      ++ctx.aborts;
    }

    for (const db::GranuleId g : held) {
      if (exclusive) {
        x_owner[g] = 0;
      } else {
        s_holders[g].erase(gid);
      }
    }
    lm.ReleaseAll(gid);
    lm.EndTxn(gid);
  }
  ++ctx.finished_workers;
}

TEST(LockManagerSetStress, PerSiteInvariantsHoldAcrossSites) {
  MultiSiteShared ctx;
  ctx.rng.Seed(42);
  constexpr int kWorkersPerSite = 6;
  constexpr int kRounds = 40;
  for (int s = 0; s < kSites; ++s) {
    for (int w = 0; w < kWorkersPerSite; ++w) SiteWorker(ctx, s, kRounds);
  }
  ctx.kernel.RunUntil(10'000'000.0);

  EXPECT_EQ(ctx.finished_workers, kSites * kWorkersPerSite);
  EXPECT_FALSE(ctx.violation) << "per-site lock exclusion violated";
  EXPECT_EQ(ctx.commits,
            static_cast<std::uint64_t>(kSites) * kWorkersPerSite * kRounds);
  EXPECT_EQ(ctx.lms.TotalHeld(), 0u);
  EXPECT_GT(ctx.lms.requests(), 0u);
  EXPECT_GT(ctx.lms.blocks(), 0u);
  if (ctx.aborts > 0) {
    EXPECT_GT(ctx.lms.local_deadlocks(), 0u);
  }
}

TEST(LockManagerSetStress, VictimPolicyBroadcastReachesEverySite) {
  MultiSiteShared ctx;
  ctx.lms.set_victim_policy(VictimPolicy::kYoungest);
  ctx.rng.Seed(7);
  for (int s = 0; s < kSites; ++s) {
    for (int w = 0; w < 4; ++w) SiteWorker(ctx, s, 20);
  }
  ctx.kernel.RunUntil(10'000'000.0);
  EXPECT_EQ(ctx.finished_workers, kSites * 4);
  EXPECT_FALSE(ctx.violation);
  EXPECT_EQ(ctx.lms.TotalHeld(), 0u);
}

}  // namespace
}  // namespace carat::lock
