#include "qn/mva_batch.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "qn/mva.h"
#include "qn/network.h"

namespace carat::qn {
namespace {

// Bitwise equality (not EXPECT_DOUBLE_EQ): the batch contract is that lane w
// reproduces the scalar solve of lane w's network bit for bit.
bool SameBits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void ExpectBitIdentical(const Solution& batch, const Solution& scalar,
                        std::size_t lane) {
  ASSERT_EQ(batch.throughput.size(), scalar.throughput.size());
  for (std::size_t k = 0; k < scalar.throughput.size(); ++k) {
    EXPECT_TRUE(SameBits(batch.throughput[k], scalar.throughput[k]))
        << "lane " << lane << " throughput[" << k << "]: "
        << batch.throughput[k] << " vs " << scalar.throughput[k];
    EXPECT_TRUE(SameBits(batch.response_time[k], scalar.response_time[k]))
        << "lane " << lane << " response_time[" << k << "]";
    for (std::size_t m = 0; m < scalar.residence[k].size(); ++m) {
      EXPECT_TRUE(SameBits(batch.residence[k][m], scalar.residence[k][m]))
          << "lane " << lane << " residence[" << k << "][" << m << "]";
    }
  }
  for (std::size_t m = 0; m < scalar.queue_length.size(); ++m) {
    EXPECT_TRUE(SameBits(batch.queue_length[m], scalar.queue_length[m]))
        << "lane " << lane << " queue_length[" << m << "]";
    EXPECT_TRUE(SameBits(batch.utilization[m], scalar.utilization[m]))
        << "lane " << lane << " utilization[" << m << "]";
  }
}

// A CARAT-site-like shape: three queueing centers, two delay centers, three
// chains. `variant` skews demands, think times and populations per lane the
// way a sweep does.
ClosedNetwork MakeNet(std::size_t variant, int base_pop) {
  ClosedNetwork net;
  const std::size_t cpu = net.AddCenter("cpu", CenterKind::kQueueing);
  const std::size_t d1 = net.AddCenter("disk1", CenterKind::kQueueing);
  const std::size_t d2 = net.AddCenter("disk2", CenterKind::kQueueing);
  const std::size_t lan = net.AddCenter("lan", CenterKind::kDelay);
  const std::size_t term = net.AddCenter("terminals", CenterKind::kDelay);
  const double s = 1.0 + 0.03 * static_cast<double>(variant);
  const std::size_t a =
      net.AddChain("read", base_pop + static_cast<int>(variant % 3),
                   /*think_time=*/1000.0 * s);
  const std::size_t b = net.AddChain("write", base_pop, 500.0);
  const std::size_t c = net.AddChain("commit", base_pop / 2, 250.0 / s);
  net.chains[a].demands[cpu] = 5.1 * s;
  net.chains[a].demands[d1] = 24.0;
  net.chains[a].demands[lan] = 4.3;
  net.chains[b].demands[cpu] = 7.7;
  net.chains[b].demands[d2] = 30.0 * s;
  net.chains[b].demands[term] = 2.0;
  net.chains[c].demands[cpu] = 1.9 / s;
  net.chains[c].demands[d1] = 12.0;
  net.chains[c].demands[d2] = 6.5 * s;
  return net;
}

std::vector<const ClosedNetwork*> Pointers(
    const std::vector<ClosedNetwork>& nets) {
  std::vector<const ClosedNetwork*> ptrs;
  for (const ClosedNetwork& net : nets) ptrs.push_back(&net);
  return ptrs;
}

TEST(SchweitzerMvaBatch, BitIdenticalToScalarAcrossLaneWidths) {
  for (std::size_t lanes : {1u, 2u, 4u, 5u, 8u}) {
    std::vector<ClosedNetwork> nets;
    for (std::size_t w = 0; w < lanes; ++w) nets.push_back(MakeNet(w, 16));
    const auto ptrs = Pointers(nets);

    BatchMvaWorkspace bw;
    std::string err;
    ASSERT_TRUE(SchweitzerMvaBatchInPlace(ptrs.data(), lanes, &bw,
                                          /*tolerance=*/1e-9,
                                          /*max_iterations=*/10000,
                                          /*warm_start=*/false, &err))
        << err;

    for (std::size_t w = 0; w < lanes; ++w) {
      MvaWorkspace sw;
      ASSERT_TRUE(SchweitzerMvaInPlace(nets[w], &sw));
      EXPECT_EQ(bw.iterations[w], sw.iterations) << "lane " << w;
      ExpectBitIdentical(bw.solutions[w], sw.solution, w);
    }
  }
}

TEST(SchweitzerMvaBatch, LanesRetireAtDifferentIterationCounts) {
  // Wildly different populations converge at different speeds; retired lanes
  // must hold their converged state bit-exactly while others keep going.
  constexpr std::size_t kLanes = 4;
  std::vector<ClosedNetwork> nets;
  nets.push_back(MakeNet(0, 2));
  nets.push_back(MakeNet(1, 16));
  nets.push_back(MakeNet(2, 64));
  nets.push_back(MakeNet(3, 256));
  const auto ptrs = Pointers(nets);

  BatchMvaWorkspace bw;
  ASSERT_TRUE(SchweitzerMvaBatchInPlace(ptrs.data(), kLanes, &bw));

  std::vector<int> iters;
  for (std::size_t w = 0; w < kLanes; ++w) {
    MvaWorkspace sw;
    ASSERT_TRUE(SchweitzerMvaInPlace(nets[w], &sw));
    EXPECT_EQ(bw.iterations[w], sw.iterations) << "lane " << w;
    ExpectBitIdentical(bw.solutions[w], sw.solution, w);
    iters.push_back(bw.iterations[w]);
  }
  // The premise of the test: at least two lanes genuinely converged at
  // different iteration counts.
  EXPECT_NE(iters.front(), iters.back());
}

TEST(SchweitzerMvaBatch, EmptyChainLaneMatchesScalar) {
  std::vector<ClosedNetwork> nets;
  for (std::size_t w = 0; w < 3; ++w) nets.push_back(MakeNet(w, 12));
  nets[1].chains[2].population = 0;  // pop-0 chain in the middle lane
  const auto ptrs = Pointers(nets);

  BatchMvaWorkspace bw;
  ASSERT_TRUE(SchweitzerMvaBatchInPlace(ptrs.data(), nets.size(), &bw));
  for (std::size_t w = 0; w < nets.size(); ++w) {
    MvaWorkspace sw;
    ASSERT_TRUE(SchweitzerMvaInPlace(nets[w], &sw));
    ExpectBitIdentical(bw.solutions[w], sw.solution, w);
  }
  EXPECT_TRUE(SameBits(bw.solutions[1].throughput[2], 0.0));
}

TEST(SchweitzerMvaBatch, WarmStartResumesPerLane) {
  constexpr std::size_t kLanes = 4;
  std::vector<ClosedNetwork> nets;
  for (std::size_t w = 0; w < kLanes; ++w) nets.push_back(MakeNet(w, 24));
  auto ptrs = Pointers(nets);

  BatchMvaWorkspace bw;
  ASSERT_TRUE(SchweitzerMvaBatchInPlace(ptrs.data(), kLanes, &bw));

  // Scalar twins retain their own qkm the same way.
  std::vector<MvaWorkspace> sws(kLanes);
  for (std::size_t w = 0; w < kLanes; ++w) {
    ASSERT_TRUE(SchweitzerMvaInPlace(nets[w], &sws[w]));
  }

  // Nudge every lane's parameters, invalidate lane 2 (as the serving layer
  // does when a lane has no warm seed), and re-solve warm.
  for (std::size_t w = 0; w < kLanes; ++w) {
    nets[w].chains[0].demands[0] *= 1.05;
    nets[w].chains[1].think_time *= 0.9;
  }
  bw.InvalidateWarm(2);
  ASSERT_TRUE(SchweitzerMvaBatchInPlace(ptrs.data(), kLanes, &bw,
                                        /*tolerance=*/1e-9,
                                        /*max_iterations=*/10000,
                                        /*warm_start=*/true));

  for (std::size_t w = 0; w < kLanes; ++w) {
    if (w == 2) sws[w].qkm.clear();  // scalar equivalent of InvalidateWarm
    ASSERT_TRUE(SchweitzerMvaInPlace(nets[w], &sws[w], 1e-9, 10000,
                                     /*warm_start=*/true));
    EXPECT_EQ(bw.iterations[w], sws[w].iterations) << "lane " << w;
    ExpectBitIdentical(bw.solutions[w], sws[w].solution, w);
  }
}

TEST(SchweitzerMvaBatch, RejectsMixedShapes) {
  std::vector<ClosedNetwork> nets;
  nets.push_back(MakeNet(0, 8));
  nets.push_back(MakeNet(1, 8));
  nets[1].AddCenter("extra", CenterKind::kQueueing);
  for (auto& chain : nets[1].chains) chain.demands.resize(6, 0.0);
  const auto ptrs = Pointers(nets);

  BatchMvaWorkspace bw;
  std::string err;
  EXPECT_FALSE(SchweitzerMvaBatchInPlace(ptrs.data(), 2, &bw, 1e-9, 10000,
                                         false, &err));
  EXPECT_NE(err.find("shape"), std::string::npos) << err;

  // Same center/chain counts but a different center *kind* is also a
  // different shape.
  std::vector<ClosedNetwork> kinds;
  kinds.push_back(MakeNet(0, 8));
  kinds.push_back(MakeNet(1, 8));
  kinds[1].centers[3].kind = CenterKind::kQueueing;
  const auto kptrs = Pointers(kinds);
  EXPECT_FALSE(SchweitzerMvaBatchInPlace(kptrs.data(), 2, &bw, 1e-9, 10000,
                                         false, &err));
}

TEST(ExactMvaBatch, BitIdenticalToScalarWithSharedLattice) {
  // Same populations (shared lattice), different demands/think per lane.
  std::vector<ClosedNetwork> nets;
  for (std::size_t w = 0; w < 4; ++w) nets.push_back(MakeNet(3 * w, 4));
  for (auto& net : nets) {
    net.chains[0].population = 4;  // undo the variant pop skew
  }
  const auto ptrs = Pointers(nets);

  BatchMvaWorkspace bw;
  std::string err;
  ASSERT_TRUE(ExactMvaBatchInPlace(ptrs.data(), nets.size(), &bw,
                                   /*max_states=*/1u << 22, &err))
      << err;
  for (std::size_t w = 0; w < nets.size(); ++w) {
    MvaWorkspace sw;
    ASSERT_TRUE(ExactMvaInPlace(nets[w], &sw));
    EXPECT_EQ(bw.iterations[w], 0);
    ExpectBitIdentical(bw.solutions[w], sw.solution, w);
  }
}

TEST(ExactMvaBatch, RejectsDifferingPopulations) {
  std::vector<ClosedNetwork> nets;
  nets.push_back(MakeNet(0, 4));
  nets.push_back(MakeNet(0, 4));
  nets[1].chains[1].population = 5;
  const auto ptrs = Pointers(nets);
  BatchMvaWorkspace bw;
  std::string err;
  EXPECT_FALSE(ExactMvaBatchInPlace(ptrs.data(), 2, &bw, 1u << 22, &err));
  EXPECT_NE(err.find("population"), std::string::npos) << err;
}

TEST(SolveMvaBatch, AllSchweitzerTakesLockstepPathBitIdentical) {
  std::vector<ClosedNetwork> nets;
  for (std::size_t w = 0; w < 6; ++w) nets.push_back(MakeNet(w, 16));
  const auto ptrs = Pointers(nets);

  // exact_state_limit=1 forces every lane onto the Schweitzer path, same as
  // the scalar dispatch rule would.
  BatchMvaWorkspace bw;
  ASSERT_TRUE(SolveMvaBatchInPlace(ptrs.data(), nets.size(), &bw,
                                   /*exact_state_limit=*/1));
  for (std::size_t w = 0; w < nets.size(); ++w) {
    MvaWorkspace sw;
    ASSERT_TRUE(SolveMvaInPlace(nets[w], &sw, /*exact_state_limit=*/1));
    EXPECT_EQ(bw.iterations[w], sw.iterations);
    ExpectBitIdentical(bw.solutions[w], sw.solution, w);
  }
}

TEST(SolveMvaBatch, AllExactSharedLatticeBitIdentical) {
  std::vector<ClosedNetwork> nets;
  for (std::size_t w = 0; w < 4; ++w) nets.push_back(MakeNet(3 * w, 4));
  for (auto& net : nets) net.chains[0].population = 4;
  const auto ptrs = Pointers(nets);

  BatchMvaWorkspace bw;
  ASSERT_TRUE(SolveMvaBatchInPlace(ptrs.data(), nets.size(), &bw));
  for (std::size_t w = 0; w < nets.size(); ++w) {
    MvaWorkspace sw;
    ASSERT_TRUE(SolveMvaInPlace(nets[w], &sw));
    ExpectBitIdentical(bw.solutions[w], sw.solution, w);
  }
}

TEST(SolveMvaBatch, MixedDispatchFallsBackBitIdentical) {
  // Lane 0/2 exact (tiny pops), lane 1/3 Schweitzer (pops past the limit):
  // the batch must apply the scalar per-network dispatch rule to each lane.
  std::vector<ClosedNetwork> nets;
  nets.push_back(MakeNet(0, 2));
  nets.push_back(MakeNet(1, 64));
  nets.push_back(MakeNet(2, 3));
  nets.push_back(MakeNet(3, 64));
  const auto ptrs = Pointers(nets);
  constexpr std::size_t kLimit = 1000;  // (2..4)^3-ish lattices fit, 64^3 not

  BatchMvaWorkspace bw;
  ASSERT_TRUE(SolveMvaBatchInPlace(ptrs.data(), nets.size(), &bw, kLimit));
  for (std::size_t w = 0; w < nets.size(); ++w) {
    MvaWorkspace sw;
    ASSERT_TRUE(SolveMvaInPlace(nets[w], &sw, kLimit));
    EXPECT_EQ(bw.iterations[w], sw.iterations);
    ExpectBitIdentical(bw.solutions[w], sw.solution, w);
  }
}

TEST(SolveMvaBatch, ExactLanesWithDifferentLatticesFallBackBitIdentical) {
  std::vector<ClosedNetwork> nets;
  nets.push_back(MakeNet(0, 2));
  nets.push_back(MakeNet(0, 4));  // different pops: no shared lattice
  const auto ptrs = Pointers(nets);

  BatchMvaWorkspace bw;
  ASSERT_TRUE(SolveMvaBatchInPlace(ptrs.data(), 2, &bw));
  for (std::size_t w = 0; w < 2; ++w) {
    MvaWorkspace sw;
    ASSERT_TRUE(SolveMvaInPlace(nets[w], &sw));
    ExpectBitIdentical(bw.solutions[w], sw.solution, w);
  }
}

TEST(MvaBatch, CompiledLaneWidthIsReported) {
  const std::size_t lanes = MvaCompiledSimdDoubleLanes();
  EXPECT_GE(lanes, 1u);
  EXPECT_LE(lanes, kMvaBatchLaneWidth);
}

}  // namespace
}  // namespace carat::qn
