// Serving-layer tests: canonical keys, the LRU solution cache, the
// nearest-neighbor warm-start index, and SolverService end to end. The
// service promises that caching, arena reuse and request coalescing never
// change numerics, so the comparisons here are bit-for-bit (memcmp on the
// doubles), matching parallel_determinism_test's standard. Warm starting is
// the one opt-in feature allowed to move results within solver tolerance.

#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "model/solver.h"
#include "serve/key.h"
#include "serve/solution_cache.h"
#include "serve/solver_service.h"
#include "serve/warm_index.h"
#include "util/random.h"
#include "workload/spec.h"

namespace carat {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectIdentical(const model::ModelSolution& a,
                     const model::ModelSolution& b) {
  ASSERT_EQ(a.ok, b.ok);
  ASSERT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  EXPECT_TRUE(SameBits(a.comm_delay_ms, b.comm_delay_ms));
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    const model::SiteSolution& sa = a.sites[i];
    const model::SiteSolution& sb = b.sites[i];
    EXPECT_TRUE(SameBits(sa.cpu_utilization, sb.cpu_utilization));
    EXPECT_TRUE(SameBits(sa.dio_per_s, sb.dio_per_s));
    EXPECT_TRUE(SameBits(sa.txn_per_s, sb.txn_per_s));
    EXPECT_TRUE(SameBits(sa.records_per_s, sb.records_per_s));
    for (model::TxnType t : model::kAllTxnTypes) {
      const model::ClassSolution& ca = sa.Class(t);
      const model::ClassSolution& cb = sb.Class(t);
      ASSERT_EQ(ca.present, cb.present);
      EXPECT_TRUE(SameBits(ca.throughput_per_s, cb.throughput_per_s));
      EXPECT_TRUE(SameBits(ca.response_ms, cb.response_ms));
      EXPECT_TRUE(SameBits(ca.pa, cb.pa));
      EXPECT_TRUE(SameBits(ca.d_lw_ms, cb.d_lw_ms));
      EXPECT_TRUE(SameBits(ca.d_rw_ms, cb.d_rw_ms));
      EXPECT_TRUE(SameBits(ca.d_cw_ms, cb.d_cw_ms));
    }
  }
}

model::ModelSolution MakeStubSolution(double tag) {
  model::ModelSolution sol;
  sol.ok = true;
  sol.comm_delay_ms = tag;
  return sol;
}

// ---- Canonical keys --------------------------------------------------------

TEST(CanonicalKey, EqualQueriesProduceEqualKeys) {
  const model::ModelInput a = workload::MakeMB4(8).ToModelInput();
  const model::ModelInput b = workload::MakeMB4(8).ToModelInput();
  EXPECT_EQ(serve::CanonicalKey(a, {}), serve::CanonicalKey(b, {}));
}

TEST(CanonicalKey, AnyInputPerturbationChangesTheKey) {
  const model::ModelInput base = workload::MakeMB4(8).ToModelInput();
  const std::string key = serve::CanonicalKey(base, {});

  model::ModelInput different_n = workload::MakeMB4(9).ToModelInput();
  EXPECT_NE(serve::CanonicalKey(different_n, {}), key);

  model::ModelInput think = base;
  think.sites[0].think_time_ms += 1e-9;
  EXPECT_NE(serve::CanonicalKey(think, {}), key);

  model::ModelInput comm = base;
  comm.comm_delay_ms += 1.0;
  EXPECT_NE(serve::CanonicalKey(comm, {}), key);
}

TEST(CanonicalKey, SolverOptionsAreFoldedIn) {
  const model::ModelInput input = workload::MakeMB4(8).ToModelInput();
  model::SolverOptions a;
  model::SolverOptions b;
  b.damping = a.damping + 0.01;
  EXPECT_NE(serve::CanonicalKey(input, a), serve::CanonicalKey(input, b));
  model::SolverOptions c;
  c.ethernet = qn::EthernetParams{};
  EXPECT_NE(serve::CanonicalKey(input, a), serve::CanonicalKey(input, c));
}

TEST(CanonicalKey, PoolPointerDoesNotAffectTheKey) {
  // The pool changes where the solve runs, never what it computes.
  const model::ModelInput input = workload::MakeMB4(8).ToModelInput();
  model::SolverOptions a;
  model::SolverOptions b;
  b.pool = reinterpret_cast<exec::ThreadPool*>(0x1);
  EXPECT_EQ(serve::CanonicalKey(input, a), serve::CanonicalKey(input, b));
}

// ---- Solution cache --------------------------------------------------------

TEST(SolutionCache, EvictsLeastRecentlyUsed) {
  serve::SolutionCache cache(2);
  cache.Put("a", MakeStubSolution(1));
  cache.Put("b", MakeStubSolution(2));
  ASSERT_NE(cache.Get("a"), nullptr);  // touch: "b" is now the LRU entry
  cache.Put("c", MakeStubSolution(3));
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("a")->comm_delay_ms, 1.0);
  ASSERT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SolutionCache, PutRefreshesExistingKey) {
  serve::SolutionCache cache(2);
  cache.Put("a", MakeStubSolution(1));
  cache.Put("a", MakeStubSolution(7));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("a")->comm_delay_ms, 7.0);
}

TEST(SolutionCache, ZeroCapacityDisables) {
  serve::SolutionCache cache(0);
  cache.Put("a", MakeStubSolution(1));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolutionCache, TtlExpiresEntriesDeterministically) {
  serve::SolutionCache::Config config;
  config.capacity = 4;
  config.ttl = std::chrono::milliseconds(100);
  serve::SolutionCache cache(config);

  const auto t0 = serve::SolutionCache::Clock::now();
  cache.Put("a", MakeStubSolution(1), t0);
  // Still fresh at t0 + 50 ms...
  ASSERT_NE(cache.Get("a", t0 + std::chrono::milliseconds(50)), nullptr);
  // ...expired (and dropped) at t0 + 150 ms.
  EXPECT_EQ(cache.Get("a", t0 + std::chrono::milliseconds(150)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);

  // An expired entry is a true miss: re-inserting starts a fresh lifetime.
  cache.Put("a", MakeStubSolution(2), t0 + std::chrono::milliseconds(150));
  ASSERT_NE(cache.Get("a", t0 + std::chrono::milliseconds(200)), nullptr);
  EXPECT_EQ(cache.Get("a", t0 + std::chrono::milliseconds(200))->comm_delay_ms,
            2.0);
}

TEST(SolutionCache, ByteBoundEvictsLeastRecentlyUsed) {
  model::ModelSolution solution = MakeStubSolution(1);
  const std::size_t per_entry =
      serve::SolutionFootprintBytes(solution) + 1;  // + 1-byte key
  serve::SolutionCache::Config config;
  config.capacity = 100;  // entry bound never binds in this test
  config.max_bytes = 2 * per_entry;
  serve::SolutionCache cache(config);

  cache.Put("a", solution);
  cache.Put("b", solution);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.bytes(), config.max_bytes);

  cache.Put("c", solution);  // over the byte cap: "a" (LRU) is evicted
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.bytes(), config.max_bytes);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(SolutionCache, EntryLargerThanTheByteCapIsNotRetained) {
  model::ModelSolution big = MakeStubSolution(1);
  big.sites.resize(64);  // inflate the footprint well past the cap
  serve::SolutionCache::Config config;
  config.capacity = 100;
  config.max_bytes = 64;
  serve::SolutionCache cache(config);
  cache.Put("big", big);
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
}

// ---- Warm-start index ------------------------------------------------------

TEST(WarmStartIndex, PicksNearestFeatureWithinShape) {
  serve::WarmStartIndex index(8);
  model::WarmStart warm;
  warm.comm_delay_ms = 10.0;
  index.Insert("shape", 10.0, warm);
  warm.comm_delay_ms = 20.0;
  index.Insert("shape", 20.0, warm);
  model::WarmStart out;
  ASSERT_TRUE(index.Nearest("shape", 13.0, &out));
  EXPECT_EQ(out.comm_delay_ms, 10.0);
  ASSERT_TRUE(index.Nearest("shape", 16.0, &out));
  EXPECT_EQ(out.comm_delay_ms, 20.0);
  EXPECT_FALSE(index.Nearest("other-shape", 13.0, &out));
}

TEST(WarmStartIndex, SameFeatureOverwritesAndCapacityEvictsLeastRecent) {
  serve::WarmStartIndex index(2);
  model::WarmStart warm;
  warm.comm_delay_ms = 1.0;
  index.Insert("s", 5.0, warm);
  warm.comm_delay_ms = 2.0;
  index.Insert("s", 5.0, warm);  // refresh, not a second entry
  EXPECT_EQ(index.size(), 1u);
  model::WarmStart out;
  ASSERT_TRUE(index.Nearest("s", 5.0, &out));
  EXPECT_EQ(out.comm_delay_ms, 2.0);

  warm.comm_delay_ms = 3.0;
  index.Insert("s", 6.0, warm);
  warm.comm_delay_ms = 4.0;
  index.Insert("s", 7.0, warm);  // at capacity: evicts the oldest (5.0)
  EXPECT_EQ(index.size(), 2u);
  ASSERT_TRUE(index.Nearest("s", 5.0, &out));
  EXPECT_EQ(out.comm_delay_ms, 3.0);  // 6.0 is now the closest survivor
}

TEST(WarmStartIndex, RefreshProtectsAnEntryFromEviction) {
  // Regression: the old ring cursor evicted by slot order, so refreshing a
  // seed did not renew it — insert 5, insert 6, refresh 5, insert 7 evicted
  // the just-refreshed 5. Eviction is by last-write recency: 6 must go.
  serve::WarmStartIndex index(2);
  model::WarmStart warm;
  warm.comm_delay_ms = 1.0;
  index.Insert("s", 5.0, warm);
  warm.comm_delay_ms = 2.0;
  index.Insert("s", 6.0, warm);
  warm.comm_delay_ms = 3.0;
  index.Insert("s", 5.0, warm);  // refresh renews 5.0
  warm.comm_delay_ms = 4.0;
  index.Insert("s", 7.0, warm);  // at capacity: evicts 6.0, not 5.0
  EXPECT_EQ(index.size(), 2u);
  model::WarmStart out;
  ASSERT_TRUE(index.Nearest("s", 5.9, &out));
  EXPECT_EQ(out.comm_delay_ms, 3.0);  // the refreshed seed survived
  ASSERT_TRUE(index.Nearest("s", 100.0, &out));
  EXPECT_EQ(out.comm_delay_ms, 4.0);
}

TEST(WarmStartIndex, NearestBreaksDistanceTiesTowardTheSmallerFeature) {
  // The winner of an exact distance tie is a function of the stored
  // features alone, not of insertion order.
  for (const bool ascending : {true, false}) {
    serve::WarmStartIndex index(4);
    model::WarmStart warm;
    warm.comm_delay_ms = ascending ? 1.0 : 2.0;
    index.Insert("s", ascending ? 10.0 : 20.0, warm);
    warm.comm_delay_ms = ascending ? 2.0 : 1.0;
    index.Insert("s", ascending ? 20.0 : 10.0, warm);
    model::WarmStart out;
    ASSERT_TRUE(index.Nearest("s", 15.0, &out));  // equidistant
    EXPECT_EQ(out.comm_delay_ms, 1.0) << "ascending=" << ascending;
  }
}

TEST(WarmStartIndex, ZeroCapacityDisables) {
  serve::WarmStartIndex index(0);
  index.Insert("s", 1.0, model::WarmStart{});
  model::WarmStart out;
  EXPECT_FALSE(index.Nearest("s", 1.0, &out));
}

// ---- SolverService ---------------------------------------------------------

TEST(SolverService, BatchMatchesDirectSolveBitwise) {
  std::vector<model::ModelInput> inputs;
  for (const int n : {2, 4, 6}) {
    inputs.push_back(workload::MakeMB4(n).ToModelInput());
    inputs.push_back(workload::MakeLB8(n).ToModelInput());
  }
  std::vector<model::ModelSolution> direct;
  for (const model::ModelInput& input : inputs) {
    direct.push_back(model::CaratModel(input).Solve());
  }

  serve::SolverService::Options opts;
  opts.threads = 4;
  opts.warm_start = false;  // cold solves promise bit-identity
  serve::SolverService service(std::move(opts));
  const std::vector<model::ModelSolution> batch = service.SolveBatch(inputs);
  ASSERT_EQ(batch.size(), inputs.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectIdentical(batch[i], direct[i]);
  }
}

TEST(SolverService, RepeatedQueryIsServedFromTheCache) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  opts.warm_start = false;
  serve::SolverService service(std::move(opts));
  const model::ModelInput input = workload::MakeMB4(4).ToModelInput();
  const model::ModelSolution first = service.Submit(input).get();
  const model::ModelSolution second = service.Submit(input).get();
  ExpectIdentical(first, second);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.solved, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(SolverService, CacheDisabledSolvesEveryQuery) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  opts.use_cache = false;
  opts.warm_start = false;
  serve::SolverService service(std::move(opts));
  const model::ModelInput input = workload::MakeMB4(4).ToModelInput();
  const model::ModelSolution first = service.Submit(input).get();
  const model::ModelSolution second = service.Submit(input).get();
  ExpectIdentical(first, second);  // resolving is still deterministic
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solved, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(SolverService, ConcurrentIdenticalQueriesCoalesceIntoOneSolve) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  opts.warm_start = false;
  serve::SolverService service(std::move(opts));

  // Plug the single worker so both submissions are accepted while the
  // solve cannot have started, making the coalescing path deterministic.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  service.pool()->Submit([gate] { gate.wait(); });

  const model::ModelInput input = workload::MakeMB4(4).ToModelInput();
  std::future<model::ModelSolution> f1 = service.Submit(input);
  std::future<model::ModelSolution> f2 = service.Submit(input);
  release.set_value();
  ExpectIdentical(f1.get(), f2.get());
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.solved, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
}

TEST(SolverService, WarmStartAgreesWithColdWithinToleranceAndSavesWork) {
  // A sweep plus a re-visit of each point: the warm service seeds every
  // solve after the first from its nearest neighbor.
  std::vector<model::ModelInput> stream;
  for (const int n : {4, 6, 8}) {
    stream.push_back(workload::MakeMB4(n).ToModelInput());
  }
  for (const int n : {5, 7}) {
    stream.push_back(workload::MakeMB4(n).ToModelInput());
  }

  const auto run = [&stream](bool warm_start) {
    serve::SolverService::Options opts;
    opts.threads = 1;
    opts.use_cache = false;
    opts.warm_start = warm_start;
    serve::SolverService service(std::move(opts));
    std::vector<model::ModelSolution> out;
    for (const model::ModelInput& input : stream) {
      out.push_back(service.Submit(input).get());  // sequential: determinate
    }
    return std::make_pair(std::move(out), service.stats());
  };

  const auto [cold, cold_stats] = run(false);
  const auto [warm, warm_stats] = run(true);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(cold[i].ok && warm[i].ok);
    EXPECT_TRUE(cold[i].converged);
    EXPECT_TRUE(warm[i].converged);
    // Same fixed point within solver tolerance, not necessarily same bits.
    EXPECT_NEAR(warm[i].TotalTxnPerSec(), cold[i].TotalTxnPerSec(),
                1e-5 * cold[i].TotalTxnPerSec());
  }
  EXPECT_FALSE(cold[0].warm_started);
  EXPECT_FALSE(warm[0].warm_started);  // nothing to seed from yet
  EXPECT_TRUE(warm[1].warm_started);
  EXPECT_EQ(warm_stats.warm_started, stream.size() - 1);
  EXPECT_LT(warm_stats.total_iterations, cold_stats.total_iterations);
}

TEST(SolverService, InvalidInputReportsErrorThroughTheFuture) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  serve::SolverService service(std::move(opts));
  const model::ModelSolution sol =
      service.Submit(model::ModelInput{}).get();  // no sites
  EXPECT_FALSE(sol.ok);
  EXPECT_FALSE(sol.error.empty());
  // Failures are not cached: a retry solves again.
  service.Submit(model::ModelInput{}).get();
  EXPECT_EQ(service.stats().solved, 2u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(SolverService, DestructorWaitsForInFlightSolves) {
  std::vector<std::future<model::ModelSolution>> futures;
  {
    serve::SolverService::Options opts;
    opts.threads = 2;
    serve::SolverService service(std::move(opts));
    for (const int n : {2, 3, 4, 5, 6, 7}) {
      futures.push_back(service.Submit(workload::MakeMB4(n).ToModelInput()));
    }
    // Service dies here with solves still queued/running.
  }
  for (std::future<model::ModelSolution>& f : futures) {
    const model::ModelSolution sol = f.get();
    EXPECT_TRUE(sol.ok) << sol.error;
  }
}

TEST(SolverService, ConcurrentSubmittersAllGetBitIdenticalAnswers) {
  std::vector<model::ModelInput> inputs;
  for (const int n : {2, 3, 4, 5}) {
    inputs.push_back(workload::MakeMB4(n).ToModelInput());
    inputs.push_back(workload::MakeLB8(n).ToModelInput());
  }
  std::vector<model::ModelSolution> expected;
  for (const model::ModelInput& input : inputs) {
    expected.push_back(model::CaratModel(input).Solve());
  }

  serve::SolverService::Options opts;
  opts.threads = 4;
  opts.warm_start = false;
  serve::SolverService service(std::move(opts));

  constexpr int kSubmitters = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&service, &inputs, &expected, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Stagger the order per thread so cache hits, coalescing and fresh
        // solves all interleave.
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          const std::size_t idx = (i + t) % inputs.size();
          const model::ModelSolution sol =
              service.Submit(inputs[idx]).get();
          ExpectIdentical(sol, expected[idx]);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kSubmitters * kRounds * inputs.size()));
  // Every distinct input is solved at most once; everything else is a cache
  // hit or coalesced onto an in-flight solve.
  EXPECT_EQ(stats.solved, inputs.size());
  EXPECT_EQ(stats.cache_hits + stats.coalesced,
            stats.submitted - stats.solved);
}

TEST(SolverService, PerQuerySolverOptionsNeverAliasInTheCache) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  opts.warm_start = false;
  serve::SolverService service(std::move(opts));
  const model::ModelInput input = workload::MakeMB4(8).ToModelInput();

  model::SolverOptions exact;
  exact.use_exact_mva = true;
  model::SolverOptions approx;
  approx.use_exact_mva = false;

  const model::ModelSolution a = service.Submit(input, exact).get();
  const model::ModelSolution b = service.Submit(input, approx).get();
  // Identical input under different options: two real solves, no aliasing.
  EXPECT_EQ(service.stats().solved, 2u);
  EXPECT_EQ(service.stats().cache_hits, 0u);

  // Each override replays from its own cache entry...
  ExpectIdentical(service.Submit(input, exact).get(), a);
  ExpectIdentical(service.Submit(input, approx).get(), b);
  EXPECT_EQ(service.stats().cache_hits, 2u);
  EXPECT_EQ(service.stats().solved, 2u);

  // ...and matches a dedicated solver run under the same options.
  ExpectIdentical(a, model::CaratModel(input).Solve(exact));
  ExpectIdentical(b, model::CaratModel(input).Solve(approx));
}

TEST(SolverService, SolveSyncSharesCacheAndStatsWithSubmit) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  opts.warm_start = false;
  serve::SolverService service(std::move(opts));
  const model::ModelInput input = workload::MakeMB4(4).ToModelInput();

  const model::ModelSolution sync = service.SolveSync(input);
  // Submit of the same query is answered from the cache SolveSync filled.
  ExpectIdentical(service.Submit(input).get(), sync);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.solved, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);

  // Per-query override variant solves separately.
  model::SolverOptions approx;
  approx.use_exact_mva = false;
  service.SolveSync(input, &approx);
  EXPECT_EQ(service.stats().solved, 2u);
}

TEST(SolverService, CacheEvictionsAndExpirationsSurfaceInStats) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  opts.warm_start = false;
  opts.cache_capacity = 1;  // second distinct query evicts the first
  serve::SolverService service(std::move(opts));
  service.Submit(workload::MakeMB4(4).ToModelInput()).get();
  service.Submit(workload::MakeMB4(5).ToModelInput()).get();
  EXPECT_EQ(service.stats().cache_evictions, 1u);
  EXPECT_EQ(service.stats().cache_expirations, 0u);
}

TEST(SolverService, ClearCacheForcesResolve) {
  serve::SolverService::Options opts;
  opts.threads = 1;
  opts.warm_start = false;
  serve::SolverService service(std::move(opts));
  const model::ModelInput input = workload::MakeMB4(4).ToModelInput();
  const model::ModelSolution first = service.Submit(input).get();
  service.ClearCache();
  const model::ModelSolution again = service.Submit(input).get();
  ExpectIdentical(first, again);
  EXPECT_EQ(service.stats().solved, 2u);
}

// ------------------------------------------------- lockstep batch solving ---

TEST(SolverService, SubmitBatchSolvesLockstepBlocksBitIdentically) {
  // 11 same-shape queries at lane width 4: two full lockstep blocks plus a
  // ragged tail of three scalar solves. Every answer must match a direct
  // cold CaratModel::Solve() bit for bit.
  std::vector<model::ModelInput> inputs;
  for (const int n : {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}) {
    inputs.push_back(workload::MakeMB4(n).ToModelInput());
  }
  std::vector<model::ModelSolution> direct;
  for (const model::ModelInput& input : inputs) {
    direct.push_back(model::CaratModel(input).Solve());
  }

  serve::SolverService::Options opts;
  opts.threads = 2;
  opts.warm_start = false;
  opts.batch_lane_width = 4;
  serve::SolverService service(std::move(opts));
  std::vector<std::future<model::ModelSolution>> futures =
      service.SubmitBatch(inputs);
  ASSERT_EQ(futures.size(), inputs.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectIdentical(futures[i].get(), direct[i]);
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 11u);
  EXPECT_EQ(stats.solved, 11u);
  EXPECT_EQ(stats.batch_blocks, 2u);
  EXPECT_EQ(stats.batched, 8u);
  EXPECT_EQ(stats.batch_lanes_filled, 8u);
  EXPECT_EQ(stats.batch_scalar_tail, 3u);
}

TEST(SolverService, SubmitBatchGroupsByShapeAndNeverMixesBlocks) {
  // Interleaved mb4 / lb8 queries: the groups are cut per shape, so each
  // family forms its own block (4 lanes) plus its own tail (2 scalars).
  std::vector<model::ModelInput> inputs;
  for (const int n : {2, 4, 6, 8, 10, 12}) {
    inputs.push_back(workload::MakeMB4(n).ToModelInput());
    inputs.push_back(workload::MakeLB8(n).ToModelInput());
  }
  std::vector<model::ModelSolution> direct;
  for (const model::ModelInput& input : inputs) {
    direct.push_back(model::CaratModel(input).Solve());
  }

  serve::SolverService::Options opts;
  opts.threads = 3;
  opts.warm_start = false;
  opts.batch_lane_width = 4;
  serve::SolverService service(std::move(opts));
  const std::vector<model::ModelSolution> got = service.SolveBatch(inputs);
  ASSERT_EQ(got.size(), inputs.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectIdentical(got[i], direct[i]);
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batch_blocks, 2u);
  EXPECT_EQ(stats.batched, 8u);
  EXPECT_EQ(stats.batch_scalar_tail, 4u);
}

TEST(SolverService, SubmitBatchCoalescesDuplicatesAndUsesTheCache) {
  serve::SolverService::Options opts;
  opts.threads = 2;
  opts.warm_start = false;
  opts.batch_lane_width = 4;
  serve::SolverService service(std::move(opts));

  const model::ModelInput a = workload::MakeMB4(4).ToModelInput();
  const model::ModelInput b = workload::MakeMB4(8).ToModelInput();
  std::vector<std::future<model::ModelSolution>> futures =
      service.SubmitBatch({a, a, b, a});
  std::vector<model::ModelSolution> got;
  for (std::future<model::ModelSolution>& f : futures) got.push_back(f.get());
  ExpectIdentical(got[0], got[1]);
  ExpectIdentical(got[0], got[3]);
  {
    const serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.solved, 2u);      // a and b, once each
    EXPECT_EQ(stats.coalesced, 2u);   // the duplicate a's
    EXPECT_EQ(stats.batched, 0u);     // 2 fresh < lane width -> scalar tail
    EXPECT_EQ(stats.batch_scalar_tail, 2u);
  }
  const std::vector<model::ModelSolution> replay = service.SolveBatch({a, b});
  ExpectIdentical(replay[0], got[0]);
  ExpectIdentical(replay[1], got[2]);
  EXPECT_EQ(service.stats().cache_hits, 2u);
  EXPECT_EQ(service.stats().solved, 2u);
}

TEST(SolverService, BatchLaneWidthZeroDisablesLockstepBatching) {
  std::vector<model::ModelInput> inputs;
  for (const int n : {2, 4, 6, 8}) {
    inputs.push_back(workload::MakeMB4(n).ToModelInput());
  }
  serve::SolverService::Options opts;
  opts.threads = 2;
  opts.warm_start = false;
  opts.batch_lane_width = 0;
  serve::SolverService service(std::move(opts));
  const std::vector<model::ModelSolution> got = service.SolveBatch(inputs);
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectIdentical(got[i], model::CaratModel(inputs[i]).Solve());
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solved, 4u);
  EXPECT_EQ(stats.batched, 0u);
  EXPECT_EQ(stats.batch_blocks, 0u);
  EXPECT_EQ(stats.batch_scalar_tail, 0u);
}

TEST(SolverService, WarmStartedBatchBlocksReachTheSameFixedPoint) {
  // With warm starting on, a second nearby sweep seeds its lanes from the
  // first sweep's converged states: same fixed point within tolerance, and
  // the warm_started counter proves the seeds were used.
  serve::SolverService::Options opts;
  opts.threads = 2;
  opts.warm_start = true;
  opts.batch_lane_width = 4;
  serve::SolverService service(std::move(opts));

  std::vector<model::ModelInput> first, second;
  for (const int n : {4, 6, 8, 10}) {
    first.push_back(workload::MakeMB8(n).ToModelInput());
    second.push_back(workload::MakeMB8(n + 1).ToModelInput());
  }
  const std::vector<model::ModelSolution> cold = service.SolveBatch(first);
  for (const model::ModelSolution& s : cold) ASSERT_TRUE(s.converged);
  const std::vector<model::ModelSolution> warm = service.SolveBatch(second);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(warm[i].ok);
    ASSERT_TRUE(warm[i].converged);
    const model::ModelSolution direct =
        model::CaratModel(second[i]).Solve(service.options().solver);
    EXPECT_NEAR(warm[i].TotalTxnPerSec(), direct.TotalTxnPerSec(),
                1e-6 * std::max(1.0, direct.TotalTxnPerSec()));
  }
  EXPECT_EQ(service.stats().batch_blocks, 2u);
  EXPECT_GT(service.stats().warm_started, 0u);
}

TEST(SolverService, InvalidInputInsideABatchBlockFailsOnlyItsLane) {
  std::vector<model::ModelInput> inputs;
  for (const int n : {2, 4, 6, 8}) {
    inputs.push_back(workload::MakeMB4(n).ToModelInput());
  }
  // A negative request count fails validation but keeps the chain-presence
  // pattern, so the lane genuinely rides inside the lockstep block.
  inputs[2].sites[0].classes[0].local_requests = -1;
  serve::SolverService::Options opts;
  opts.threads = 2;
  opts.warm_start = false;
  opts.batch_lane_width = 4;
  serve::SolverService service(std::move(opts));
  const std::vector<model::ModelSolution> got = service.SolveBatch(inputs);
  EXPECT_FALSE(got[2].ok);
  EXPECT_EQ(got[2].error, "negative request count");
  EXPECT_EQ(service.stats().batched, 4u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE(i);
    ExpectIdentical(got[i], model::CaratModel(inputs[i]).Solve());
  }
}

TEST(SolverService, SubmitBatchMatchesSubmitOnRandomMixedShapes) {
  // Differential check against generator-drawn inputs instead of the
  // hand-picked workload families above: 24 scenarios of random shape
  // (1-3 sites, arbitrary class mix, log disks, think times), so the batch
  // grouping has to cope with many small shape families and ragged tails.
  // With the cache off, SubmitBatch must be bit-identical to one-at-a-time
  // Submit — both reduce to cold solves of the same inputs.
  util::Rng rng(20260808);
  std::vector<model::ModelInput> inputs;
  for (int i = 0; i < 24; ++i) {
    inputs.push_back(fuzz::GenerateScenario(&rng).input);
  }

  serve::SolverService::Options batch_opts;
  batch_opts.threads = 2;
  batch_opts.use_cache = false;
  batch_opts.warm_start = false;
  batch_opts.batch_lane_width = 4;
  serve::SolverService batch_service(std::move(batch_opts));
  std::vector<std::future<model::ModelSolution>> futures =
      batch_service.SubmitBatch(inputs);
  ASSERT_EQ(futures.size(), inputs.size());

  serve::SolverService::Options scalar_opts;
  scalar_opts.threads = 2;
  scalar_opts.use_cache = false;
  scalar_opts.warm_start = false;
  serve::SolverService scalar_service(std::move(scalar_opts));

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectIdentical(futures[i].get(), scalar_service.Submit(inputs[i]).get());
  }
  EXPECT_EQ(batch_service.stats().solved, inputs.size());
  EXPECT_EQ(scalar_service.stats().solved, inputs.size());
}

}  // namespace
}  // namespace carat
