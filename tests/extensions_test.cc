// Tests for the beyond-the-paper extensions (listed as future work in the
// paper's conclusions): nonuniform access (hot spots) and database
// buffering, in both the analytical model and the testbed.

#include <gtest/gtest.h>

#include "carat/testbed.h"
#include "db/buffer_pool.h"
#include "model/solver.h"
#include "model/yao.h"
#include "util/approx.h"
#include "workload/spec.h"

namespace carat {
namespace {

// ------------------------------------------------------------- buffer pool -

TEST(BufferPool, MissThenHit) {
  db::BufferPool pool(2);
  EXPECT_FALSE(pool.Touch(1));
  EXPECT_TRUE(pool.Touch(1));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPool, EvictsLeastRecentlyUsed) {
  db::BufferPool pool(2);
  pool.Touch(1);
  pool.Touch(2);
  pool.Touch(1);  // 1 is now most recent
  pool.Touch(3);  // evicts 2
  EXPECT_TRUE(pool.Resident(1));
  EXPECT_FALSE(pool.Resident(2));
  EXPECT_TRUE(pool.Resident(3));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(BufferPool, ZeroCapacityNeverHits) {
  db::BufferPool pool(0);
  pool.Touch(1);
  EXPECT_FALSE(pool.Touch(1));
  EXPECT_EQ(pool.hits(), 0u);
}

TEST(BufferPool, HitRatioTracksStream) {
  db::BufferPool pool(10);
  for (int round = 0; round < 10; ++round) {
    for (db::GranuleId g = 0; g < 10; ++g) pool.Touch(g);
  }
  // 10 cold misses, 90 hits.
  EXPECT_NEAR(pool.HitRatio(), 0.9, 1e-12);
  pool.ResetStats();
  EXPECT_DOUBLE_EQ(pool.HitRatio(), 0.0);
  EXPECT_TRUE(pool.Resident(5));  // residency survives a stats reset
}

// ----------------------------------------------------------------- skew ----

TEST(AccessSkew, UniformHasFactorOne) {
  model::AccessSkew uniform{1.0, 1.0};
  EXPECT_TRUE(uniform.IsUniform());
  EXPECT_DOUBLE_EQ(uniform.ContentionFactor(), 1.0);
  // a == s is uniform-equivalent even with a formal hot set.
  model::AccessSkew balanced{0.3, 0.3};
  EXPECT_NEAR(balanced.ContentionFactor(), 1.0, 1e-12);
}

TEST(AccessSkew, HotSpotInflatesContention) {
  // 80% of accesses on 10% of data: f = .64/.1 + .04/.9 = 6.444...
  model::AccessSkew skew{0.1, 0.8};
  EXPECT_NEAR(skew.ContentionFactor(), 0.64 / 0.1 + 0.04 / 0.9, 1e-12);
  EXPECT_GT(skew.ContentionFactor(), 6.0);
}

TEST(YaoReal, MatchesIntegerYaoOnIntegers) {
  for (const long long k : {1, 16, 80, 500}) {
    EXPECT_NEAR(model::YaoExpectedBlocksReal(18000, 3000, k),
                model::YaoExpectedBlocks(18000, 3000, k), 1e-6)
        << "k=" << k;
  }
}

TEST(YaoSkewed, UniformSkewMatchesPlainYao) {
  const model::AccessSkew uniform{1.0, 1.0};
  EXPECT_NEAR(model::YaoExpectedBlocksSkewed(18000, 3000, 32, uniform),
              model::YaoExpectedBlocks(18000, 3000, 32), 1e-9);
}

TEST(YaoSkewed, SkewReducesDistinctBlocks) {
  const model::AccessSkew skew{0.05, 0.9};
  const double skewed = model::YaoExpectedBlocksSkewed(18000, 3000, 200, skew);
  const double uniform = model::YaoExpectedBlocks(18000, 3000, 200);
  EXPECT_LT(skewed, uniform);
  EXPECT_GT(skewed, 0.0);
}

// ----------------------------------------------- model with the extensions -

TEST(ModelExtensions, SkewRaisesBlockingAndLowersThroughput) {
  workload::WorkloadSpec uniform = workload::MakeMB8(8);
  workload::WorkloadSpec hot = uniform;
  hot.hot_data_fraction = 0.1;
  hot.hot_access_fraction = 0.8;
  const auto base = model::CaratModel(uniform.ToModelInput()).Solve();
  const auto skewed = model::CaratModel(hot.ToModelInput()).Solve();
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(skewed.ok);
  EXPECT_GT(skewed.sites[0].Class(model::TxnType::kLU).pb,
            base.sites[0].Class(model::TxnType::kLU).pb * 3.0);
  EXPECT_LT(skewed.TotalTxnPerSec(), base.TotalTxnPerSec());
}

TEST(ModelExtensions, BufferRaisesThroughputMonotonically) {
  double prev = 0.0;
  for (const int blocks : {0, 500, 1500, 3000}) {
    workload::WorkloadSpec wl = workload::MakeMB8(8);
    wl.buffer_blocks = blocks;
    const auto sol = model::CaratModel(wl.ToModelInput()).Solve();
    ASSERT_TRUE(sol.ok);
    EXPECT_GE(sol.TotalTxnPerSec(), prev) << blocks;
    prev = sol.TotalTxnPerSec();
  }
}

// --------------------------------------------- testbed with the extensions -

TestbedOptions FastOptions() {
  TestbedOptions opts;
  opts.warmup_ms = 50'000;
  opts.measure_ms = 400'000;
  return opts;
}

TEST(TestbedExtensions, SkewIncreasesConflictsAndStaysConsistent) {
  workload::WorkloadSpec uniform = workload::MakeMB8(8);
  workload::WorkloadSpec hot = uniform;
  hot.hot_data_fraction = 0.1;
  hot.hot_access_fraction = 0.8;
  const TestbedResult base = RunTestbed(uniform.ToModelInput(), FastOptions());
  const TestbedResult skewed = RunTestbed(hot.ToModelInput(), FastOptions());
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(skewed.ok);
  EXPECT_TRUE(skewed.database_consistent);
  EXPECT_GT(skewed.nodes[0].lock_blocks, base.nodes[0].lock_blocks);
  EXPECT_LT(skewed.TotalTxnPerSec(), base.TotalTxnPerSec());
}

TEST(TestbedExtensions, BufferHitsReduceDiskLoad) {
  workload::WorkloadSpec nobuf = workload::MakeMB8(8);
  workload::WorkloadSpec buf = nobuf;
  buf.buffer_blocks = 3000;  // whole database fits
  const TestbedResult a = RunTestbed(nobuf.ToModelInput(), FastOptions());
  const TestbedResult b = RunTestbed(buf.ToModelInput(), FastOptions());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_TRUE(b.database_consistent);
  EXPECT_GT(b.nodes[0].buffer_hit_ratio, 0.7);
  EXPECT_DOUBLE_EQ(a.nodes[0].buffer_hit_ratio, 0.0);
  EXPECT_GT(b.TotalTxnPerSec(), a.TotalTxnPerSec());
  EXPECT_LT(b.nodes[0].dio_per_s, a.nodes[0].dio_per_s);
}

TEST(TestbedExtensions, SkewedBufferBeatsUnskewedBuffer) {
  // A small buffer is far more effective when accesses concentrate on a
  // hot set that fits in it.
  workload::WorkloadSpec cold = workload::MakeLB8(8);
  cold.buffer_blocks = 300;
  workload::WorkloadSpec hot = cold;
  hot.hot_data_fraction = 0.05;  // 150 blocks, fits in the buffer
  hot.hot_access_fraction = 0.9;
  const TestbedResult a = RunTestbed(cold.ToModelInput(), FastOptions());
  const TestbedResult b = RunTestbed(hot.ToModelInput(), FastOptions());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_GT(b.nodes[0].buffer_hit_ratio, a.nodes[0].buffer_hit_ratio + 0.3);
}

TEST(TestbedExtensions, ModelTracksSimUnderModerateSkew) {
  workload::WorkloadSpec wl = workload::MakeMB4(8);
  wl.hot_data_fraction = 0.2;
  wl.hot_access_fraction = 0.5;
  const auto input = wl.ToModelInput();
  const auto m = model::CaratModel(input).Solve();
  const TestbedResult s = RunTestbed(input, FastOptions());
  ASSERT_TRUE(m.ok);
  ASSERT_TRUE(s.ok);
  EXPECT_TRUE(util::ApproxRel(m.TotalTxnPerSec(), s.TotalTxnPerSec(), 0.3))
      << m.TotalTxnPerSec() << " vs " << s.TotalTxnPerSec();
}

TEST(TestbedExtensions, ModelTracksSimWithBuffer) {
  workload::WorkloadSpec wl = workload::MakeMB4(8);
  wl.buffer_blocks = 1500;
  const auto input = wl.ToModelInput();
  const auto m = model::CaratModel(input).Solve();
  const TestbedResult s = RunTestbed(input, FastOptions());
  ASSERT_TRUE(m.ok);
  ASSERT_TRUE(s.ok);
  EXPECT_TRUE(util::ApproxRel(m.TotalTxnPerSec(), s.TotalTxnPerSec(), 0.35))
      << m.TotalTxnPerSec() << " vs " << s.TotalTxnPerSec();
}

}  // namespace
}  // namespace carat
