#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace carat::exec {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownWithPendingTasksDoesNotHang) {
  // Queue far more slow tasks than workers, then destroy the pool while
  // most are still pending: running tasks are joined, queued ones dropped.
  std::atomic<int> started{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&started] {
        started.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      });
    }
  }
  EXPECT_LT(started.load(), 64);  // destruction preempted the backlog
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) {
    group.Run([i] {
      if (i % 4 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroup, InlineModeAlsoPropagates) {
  TaskGroup group(nullptr);
  group.Run([] { throw std::logic_error("inline"); });
  EXPECT_THROW(group.Wait(), std::logic_error);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ParallelFor(&pool, 5, 5, [&](std::size_t) { count.fetch_add(1); });
  ParallelFor(&pool, 7, 3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelFor, SingleElementRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed_on;
  ParallelFor(&pool, 2, 3, [&](std::size_t i) {
    EXPECT_EQ(i, 2u);
    executed_on = std::this_thread::get_id();
  });
  EXPECT_EQ(executed_on, caller);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(),
              [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  ParallelFor(nullptr, 0, 10,
              [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, RethrowsExceptionFromWorker) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 0, 100,
                           [&](std::size_t i) {
                             if (i == 57) throw std::out_of_range("57");
                           }),
               std::out_of_range);
}

}  // namespace
}  // namespace carat::exec
