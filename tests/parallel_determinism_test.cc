// The parallel solve/sweep paths must be numerically indistinguishable from
// the serial ones: within a fixed-point iteration the per-site MVA solves
// are independent, and across a sweep each (workload, n, seed) point is
// solved/simulated from its own state. These tests compare results
// bit-for-bit (memcmp on the doubles, not EXPECT_DOUBLE_EQ).

#include <cstring>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "model/solver.h"
#include "repro_common.h"
#include "workload/spec.h"

namespace carat {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectIdentical(const model::ModelSolution& a,
                     const model::ModelSolution& b) {
  ASSERT_EQ(a.ok, b.ok);
  ASSERT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  EXPECT_TRUE(SameBits(a.comm_delay_ms, b.comm_delay_ms));
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    const model::SiteSolution& sa = a.sites[i];
    const model::SiteSolution& sb = b.sites[i];
    EXPECT_TRUE(SameBits(sa.cpu_utilization, sb.cpu_utilization));
    EXPECT_TRUE(SameBits(sa.db_disk_utilization, sb.db_disk_utilization));
    EXPECT_TRUE(SameBits(sa.log_disk_utilization, sb.log_disk_utilization));
    EXPECT_TRUE(SameBits(sa.dio_per_s, sb.dio_per_s));
    EXPECT_TRUE(SameBits(sa.txn_per_s, sb.txn_per_s));
    EXPECT_TRUE(SameBits(sa.records_per_s, sb.records_per_s));
    for (model::TxnType t : model::kAllTxnTypes) {
      const model::ClassSolution& ca = sa.Class(t);
      const model::ClassSolution& cb = sb.Class(t);
      ASSERT_EQ(ca.present, cb.present);
      EXPECT_TRUE(SameBits(ca.throughput_per_s, cb.throughput_per_s));
      EXPECT_TRUE(SameBits(ca.response_ms, cb.response_ms));
      EXPECT_TRUE(SameBits(ca.pa, cb.pa));
      EXPECT_TRUE(SameBits(ca.pb, cb.pb));
      EXPECT_TRUE(SameBits(ca.pd, cb.pd));
      EXPECT_TRUE(SameBits(ca.lh, cb.lh));
      EXPECT_TRUE(SameBits(ca.r_lw_ms, cb.r_lw_ms));
      EXPECT_TRUE(SameBits(ca.r_rw_ms, cb.r_rw_ms));
      EXPECT_TRUE(SameBits(ca.r_cw_ms, cb.r_cw_ms));
      EXPECT_TRUE(SameBits(ca.d_lw_ms, cb.d_lw_ms));
      EXPECT_TRUE(SameBits(ca.d_rw_ms, cb.d_rw_ms));
      EXPECT_TRUE(SameBits(ca.d_cw_ms, cb.d_cw_ms));
    }
  }
}

workload::WorkloadSpec MakeWorkload(const std::string& name, int n) {
  if (name == "lb8") return workload::MakeLB8(n);
  if (name == "mb4") return workload::MakeMB4(n);
  if (name == "mb8") return workload::MakeMB8(n);
  return workload::MakeUB6(n);
}

TEST(ParallelSolver, PooledSiteSolvesMatchSerialBitForBit) {
  exec::ThreadPool pool(8);
  for (const char* name : {"lb8", "mb4", "mb8", "ub6"}) {
    for (int n : {4, 12, 20}) {
      const model::ModelInput input = MakeWorkload(name, n).ToModelInput();
      model::SolverOptions serial_opts;
      model::SolverOptions pooled_opts;
      pooled_opts.pool = &pool;
      const model::ModelSolution serial =
          model::CaratModel(input).Solve(serial_opts);
      const model::ModelSolution pooled =
          model::CaratModel(input).Solve(pooled_opts);
      ASSERT_TRUE(serial.ok) << name << " n=" << n << ": " << serial.error;
      SCOPED_TRACE(std::string(name) + " n=" + std::to_string(n));
      ExpectIdentical(serial, pooled);
    }
  }
}

TEST(ParallelSolver, SchweitzerPathIsAlsoDeterministic) {
  // Forced Schweitzer-Bard exercises the warm-started approximate path.
  exec::ThreadPool pool(8);
  const model::ModelInput input = MakeWorkload("mb8", 8).ToModelInput();
  model::SolverOptions serial_opts;
  serial_opts.use_exact_mva = false;
  model::SolverOptions pooled_opts = serial_opts;
  pooled_opts.pool = &pool;
  const model::ModelSolution serial =
      model::CaratModel(input).Solve(serial_opts);
  const model::ModelSolution pooled =
      model::CaratModel(input).Solve(pooled_opts);
  ASSERT_TRUE(serial.ok) << serial.error;
  ExpectIdentical(serial, pooled);
}

TEST(ParallelSweep, JobsOneAndJobsEightAreBitIdentical) {
  // Short simulated windows keep this fast; determinism does not depend on
  // the window length (each point owns its RNG, seeded identically).
  for (const char* name : {"lb8", "mb4", "mb8", "ub6"}) {
    const std::string workload = name;
    const auto make = [&workload](int n) { return MakeWorkload(workload, n); };
    const std::vector<int> sizes = {4, 8, 12, 16};
    const std::vector<bench::SweepPoint> serial =
        bench::RunSweep(make, sizes, /*measure_ms=*/20'000, /*seed=*/3,
                        /*jobs=*/1);
    const std::vector<bench::SweepPoint> pooled =
        bench::RunSweep(make, sizes, /*measure_ms=*/20'000, /*seed=*/3,
                        /*jobs=*/8);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(std::string(name) + " n=" + std::to_string(serial[i].n));
      ASSERT_EQ(serial[i].n, pooled[i].n);
      ExpectIdentical(serial[i].model, pooled[i].model);
      ASSERT_TRUE(serial[i].sim.ok) << serial[i].sim.error;
      ASSERT_TRUE(pooled[i].sim.ok) << pooled[i].sim.error;
      ASSERT_EQ(serial[i].sim.events, pooled[i].sim.events);
      ASSERT_EQ(serial[i].sim.nodes.size(), pooled[i].sim.nodes.size());
      for (std::size_t j = 0; j < serial[i].sim.nodes.size(); ++j) {
        EXPECT_TRUE(SameBits(serial[i].sim.nodes[j].txn_per_s,
                             pooled[i].sim.nodes[j].txn_per_s));
        EXPECT_TRUE(SameBits(serial[i].sim.nodes[j].cpu_utilization,
                             pooled[i].sim.nodes[j].cpu_utilization));
        EXPECT_TRUE(SameBits(serial[i].sim.nodes[j].dio_per_s,
                             pooled[i].sim.nodes[j].dio_per_s));
        EXPECT_EQ(serial[i].sim.nodes[j].lock_requests,
                  pooled[i].sim.nodes[j].lock_requests);
      }
    }
  }
}

}  // namespace
}  // namespace carat
