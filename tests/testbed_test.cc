#include <gtest/gtest.h>

#include "carat/testbed.h"
#include "workload/spec.h"

namespace carat {
namespace {

using model::TxnType;

TestbedOptions FastOptions(std::uint64_t seed = 1) {
  TestbedOptions opts;
  opts.seed = seed;
  opts.warmup_ms = 20'000;
  opts.measure_ms = 200'000;
  return opts;
}

TEST(Testbed, RejectsInvalidInput) {
  const TestbedResult r = RunTestbed(model::ModelInput{}, FastOptions());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Testbed, Lb8RunsConsistently) {
  const auto input = workload::MakeLB8(8).ToModelInput();
  const TestbedResult r = RunTestbed(input, FastOptions());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.database_consistent);
  ASSERT_EQ(r.nodes.size(), 2u);
  for (const NodeResult& n : r.nodes) {
    EXPECT_GT(n.txn_per_s, 0.0);
    EXPECT_GT(n.cpu_utilization, 0.0);
    EXPECT_LE(n.cpu_utilization, 1.0);
    EXPECT_GT(n.db_disk_utilization, 0.5);  // disk-bound workload
    EXPECT_LE(n.db_disk_utilization, 1.0);
    EXPECT_GT(n.dio_per_s, 0.0);
    EXPECT_TRUE(n.Type(TxnType::kLRO).present);
    EXPECT_TRUE(n.Type(TxnType::kLU).present);
    EXPECT_FALSE(n.Type(TxnType::kDROC).present);
  }
  // Local-only workload sends no messages and finds no global deadlocks.
  EXPECT_EQ(r.network_messages, 0u);
  EXPECT_EQ(r.global_deadlocks, 0u);
}

TEST(Testbed, Mb4ExercisesDistributedPaths) {
  const auto input = workload::MakeMB4(8).ToModelInput();
  const TestbedResult r = RunTestbed(input, FastOptions());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.database_consistent);
  EXPECT_GT(r.network_messages, 0u);
  for (const NodeResult& n : r.nodes) {
    EXPECT_TRUE(n.Type(TxnType::kDROC).present);
    EXPECT_TRUE(n.Type(TxnType::kDUC).present);
    EXPECT_GT(n.Type(TxnType::kDROC).commits, 0u);
    EXPECT_GT(n.Type(TxnType::kDUC).commits, 0u);
  }
}

TEST(Testbed, DeterministicForSameSeed) {
  const auto input = workload::MakeMB4(8).ToModelInput();
  const TestbedResult a = RunTestbed(input, FastOptions(7));
  const TestbedResult b = RunTestbed(input, FastOptions(7));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.events, b.events);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes[i].txn_per_s, b.nodes[i].txn_per_s);
    EXPECT_DOUBLE_EQ(a.nodes[i].cpu_utilization, b.nodes[i].cpu_utilization);
  }
}

TEST(Testbed, DifferentSeedsDiffer) {
  const auto input = workload::MakeMB4(8).ToModelInput();
  const TestbedResult a = RunTestbed(input, FastOptions(1));
  const TestbedResult b = RunTestbed(input, FastOptions(2));
  EXPECT_NE(a.events, b.events);
}

TEST(Testbed, FasterDiskYieldsMoreThroughput) {
  const auto input = workload::MakeLB8(8).ToModelInput();
  const TestbedResult r = RunTestbed(input, FastOptions());
  ASSERT_TRUE(r.ok);
  // Node A (28 ms/block) must beat Node B (40 ms/block).
  EXPECT_GT(r.nodes[0].txn_per_s, r.nodes[1].txn_per_s);
}

TEST(Testbed, ReadOnlyBeatsUpdates) {
  const auto input = workload::MakeMB8(8).ToModelInput();
  const TestbedResult r = RunTestbed(input, FastOptions());
  ASSERT_TRUE(r.ok);
  for (const NodeResult& n : r.nodes) {
    EXPECT_GT(n.Type(TxnType::kLRO).throughput_per_s,
              n.Type(TxnType::kLU).throughput_per_s);
  }
}

TEST(Testbed, DeadlocksAppearAtHighContention) {
  const auto input = workload::MakeMB8(16).ToModelInput();
  TestbedOptions opts = FastOptions();
  opts.measure_ms = 600'000;
  const TestbedResult r = RunTestbed(input, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.database_consistent);
  std::uint64_t aborts = 0, local = 0;
  for (const NodeResult& n : r.nodes) {
    local += n.local_deadlocks;
    for (const TypeResult& t : n.types) aborts += t.aborts;
  }
  EXPECT_GT(aborts, 0u);
  EXPECT_GT(local + r.global_deadlocks, 0u);
  // Every abort traces back to a detected deadlock of one kind or another.
  EXPECT_GE(aborts, r.global_deadlocks);
}

TEST(Testbed, GlobalDeadlocksDetectedInDistributedUpdateMix) {
  // Distributed updates crossing two nodes with long transactions create
  // cross-site cycles that only the probe machinery can break; the run
  // finishing at all (with consistent state) shows detection works.
  workload::WorkloadSpec wl = workload::MakeMB8(20);
  const auto input = wl.ToModelInput();
  TestbedOptions opts = FastOptions();
  opts.measure_ms = 1'000'000;
  const TestbedResult r = RunTestbed(input, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.database_consistent);
  EXPECT_GT(r.probes_sent, 0u);
  EXPECT_GT(r.global_deadlocks, 0u);
  EXPECT_GT(r.TotalTxnPerSec(), 0.0);  // no livelock
}

TEST(Testbed, SeparateLogDiskImprovesUpdateThroughput) {
  workload::WorkloadSpec shared = workload::MakeLB8(8);
  workload::WorkloadSpec split = shared;
  split.separate_log_disk = true;
  const TestbedResult a = RunTestbed(shared.ToModelInput(), FastOptions());
  const TestbedResult b = RunTestbed(split.ToModelInput(), FastOptions());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_GT(b.TotalTxnPerSec(), a.TotalTxnPerSec() * 0.99);
  EXPECT_GT(b.nodes[0].log_disk_utilization, 0.0);
  EXPECT_DOUBLE_EQ(a.nodes[0].log_disk_utilization, 0.0);
}

TEST(Testbed, VictimPolicyVariantsRunConsistently) {
  const auto input = workload::MakeMB8(12).ToModelInput();
  for (const lock::VictimPolicy policy :
       {lock::VictimPolicy::kRequester, lock::VictimPolicy::kYoungest,
        lock::VictimPolicy::kOldest}) {
    TestbedOptions opts = FastOptions();
    opts.victim_policy = policy;
    const TestbedResult r = RunTestbed(input, opts);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.database_consistent);
    EXPECT_GT(r.TotalTxnPerSec(), 0.0);
  }
}

TEST(Testbed, ThinkTimeReducesUtilization) {
  workload::WorkloadSpec busy = workload::MakeLB8(8);
  workload::WorkloadSpec lazy = busy;
  lazy.think_time_ms = 2'000.0;
  const TestbedResult a = RunTestbed(busy.ToModelInput(), FastOptions());
  const TestbedResult b = RunTestbed(lazy.ToModelInput(), FastOptions());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_LT(b.nodes[0].db_disk_utilization, a.nodes[0].db_disk_utilization);
  EXPECT_LT(b.TotalTxnPerSec(), a.TotalTxnPerSec());
}

TEST(Testbed, CommunicationDelaySlowsDistributedWork) {
  workload::WorkloadSpec fast = workload::MakeMB4(8);
  workload::WorkloadSpec slow = fast;
  slow.comm_delay_ms = 50.0;
  const TestbedResult a = RunTestbed(fast.ToModelInput(), FastOptions());
  const TestbedResult b = RunTestbed(slow.ToModelInput(), FastOptions());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  const double fast_dro = a.nodes[0].Type(TxnType::kDROC).throughput_per_s;
  const double slow_dro = b.nodes[0].Type(TxnType::kDROC).throughput_per_s;
  EXPECT_LT(slow_dro, fast_dro);
}

TEST(Testbed, PhaseAccountingMatchesTransactionShape) {
  const auto input = workload::MakeMB8(12).ToModelInput();
  TestbedOptions opts = FastOptions();
  opts.measure_ms = 600'000;
  const TestbedResult r = RunTestbed(input, opts);
  ASSERT_TRUE(r.ok);
  for (const NodeResult& node : r.nodes) {
    // Locals never wait remotely or in 2PC.
    EXPECT_DOUBLE_EQ(node.Type(TxnType::kLRO).remote_wait_ms, 0.0);
    EXPECT_DOUBLE_EQ(node.Type(TxnType::kLU).commit_wait_ms, 0.0);
    // Distributed coordinators always pay remote and commit waits.
    EXPECT_GT(node.Type(TxnType::kDROC).remote_wait_ms, 0.0);
    EXPECT_GT(node.Type(TxnType::kDUC).commit_wait_ms, 0.0);
    // Updates contend: lock wait per commit must be visible at n = 12.
    EXPECT_GT(node.Type(TxnType::kLU).lock_wait_ms, 0.0);
    // Waits are bounded by the full response time.
    for (const TypeResult& t : node.types) {
      if (!t.present) continue;
      EXPECT_LE(t.lock_wait_ms + t.remote_wait_ms + t.commit_wait_ms,
                t.response_ms + 1e-9);
    }
  }
}

// Consistency audit across the full workload/size grid.
class TestbedGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TestbedGridTest, ConsistentAcrossGrid) {
  const int which = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  workload::WorkloadSpec wl;
  switch (which) {
    case 0: wl = workload::MakeLB8(n); break;
    case 1: wl = workload::MakeMB4(n); break;
    case 2: wl = workload::MakeMB8(n); break;
    default: wl = workload::MakeUB6(n); break;
  }
  TestbedOptions opts = FastOptions(static_cast<std::uint64_t>(which * 100 + n));
  const TestbedResult r = RunTestbed(wl.ToModelInput(), opts);
  ASSERT_TRUE(r.ok) << wl.name << " n=" << n << ": " << r.error;
  EXPECT_TRUE(r.database_consistent) << wl.name << " n=" << n;
  EXPECT_GT(r.TotalTxnPerSec(), 0.0) << wl.name << " n=" << n;
  for (const NodeResult& node : r.nodes) {
    EXPECT_LE(node.cpu_utilization, 1.0);
    EXPECT_LE(node.db_disk_utilization, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadGrid, TestbedGridTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(4, 12, 20)));

}  // namespace
}  // namespace carat
